"""Deterministic, seeded fault injection for the optimization pipeline.

Robustness claims are only testable if failures are reproducible on demand.
A :class:`FaultPlan` is a frozen description of *what can go wrong and how
often*; a :class:`FaultInjector` executes the plan with one independent
seeded PRNG stream per fault kind, so

* the same (plan, workload) pair always injects the same faults at the same
  opportunities, and
* enabling one kind never perturbs the draw sequence of another.

Injection sites live in :class:`~repro.core.optimizer.DynamicPrefetcher`:

==================  =========================================================
``corrupt_record``  for one burst, traced references are mutated before they
                    reach Sequitur (garbage addresses, occasionally a pc
                    pointing at a procedure that does not exist — which later
                    trips the dynamic editor)
``drop_burst``      one burst's traced references are discarded entirely
``analysis_error``  the analysis phase raises :class:`InjectedFault`
``cache_flush``     both cache levels are flushed mid-hibernation
``delayed_patch``   the built handlers are installed several burst-periods
                    late instead of at the awake→hibernate transition
==================  =========================================================

Every fired fault is recorded on :attr:`FaultInjector.fired` and (by the
optimizer) emitted as a ``FaultInjected`` telemetry event.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace

from repro.errors import AnalysisError, ConfigError
from repro.ir.instructions import Pc

FAULT_KINDS = (
    "corrupt_record",
    "drop_burst",
    "analysis_error",
    "cache_flush",
    "delayed_patch",
)

#: Name of the nonexistent procedure corrupted pcs point at.
CORRUPT_PROC = "__faultinjected__"


def derive_tenant_seed(seed: int, tenant_id: int) -> int:
    """Per-tenant fault seed, stable across tenant-mix changes.

    Derivation is a pure function of (base seed, tenant id) — a hash, not an
    offset — so adding/removing/reordering *other* tenants never perturbs a
    tenant's fault sequence, and no arithmetic relationship between base
    seeds can make two tenants' streams collide systematically.  Tenant 0
    keeps the base seed unchanged: a single-tenant plan injects exactly the
    faults the equivalent single run does (the N=1 equivalence invariant).
    """
    if tenant_id == 0:
        return seed
    digest = hashlib.sha256(f"fault-seed:{seed}:{tenant_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class InjectedFault(AnalysisError):
    """A deliberately injected analysis failure (typed, catchable, expected)."""

    def __init__(self, kind: str, message: str = "") -> None:
        super().__init__(message or f"injected fault: {kind}")
        self.kind = kind


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, bounded and fully determined by ``seed``.

    Attributes:
        seed: PRNG seed; two injectors built from equal plans behave
            identically.
        rate: per-opportunity firing probability of each enabled kind.
        kinds: the enabled fault kinds (subset of :data:`FAULT_KINDS`).
        max_per_kind: cap on firings per kind over a run (keeps adversarial
            runs bounded).
        record_corrupt_rate: probability that any single traced reference is
            mutated while a ``corrupt_record`` burst is active.
        patch_delay_bursts: burst-periods a ``delayed_patch`` holds the
            handlers back.
    """

    seed: int = 0
    rate: float = 0.25
    kinds: tuple[str, ...] = FAULT_KINDS
    max_per_kind: int = 4
    record_corrupt_rate: float = 0.125
    patch_delay_bursts: int = 3

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ConfigError(f"unknown fault kinds {sorted(unknown)}; known: {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError("rate must be in [0, 1]")
        if not 0.0 <= self.record_corrupt_rate <= 1.0:
            raise ConfigError("record_corrupt_rate must be in [0, 1]")
        if self.max_per_kind < 1:
            raise ConfigError("max_per_kind must be >= 1")
        if self.patch_delay_bursts < 1:
            raise ConfigError("patch_delay_bursts must be >= 1")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "max_per_kind": self.max_per_kind,
            "record_corrupt_rate": self.record_corrupt_rate,
            "patch_delay_bursts": self.patch_delay_bursts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),
            rate=float(data["rate"]),
            kinds=tuple(str(k) for k in data["kinds"]),
            max_per_kind=int(data["max_per_kind"]),
            record_corrupt_rate=float(data["record_corrupt_rate"]),
            patch_delay_bursts=int(data["patch_delay_bursts"]),
        )

    def for_tenant(self, tenant_id: int) -> "FaultPlan":
        """The same plan with its seed re-derived for one tenant
        (:func:`derive_tenant_seed`; identity for tenant 0)."""
        return replace(self, seed=derive_tenant_seed(self.seed, tenant_id))


class FaultInjector:
    """Executes a :class:`FaultPlan` with per-kind deterministic PRNG streams."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rngs = {
            kind: random.Random((plan.seed << 8) ^ (index + 1))
            for index, kind in enumerate(FAULT_KINDS)
        }
        self._record_rng = random.Random((plan.seed << 8) ^ 0x7F)
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        #: (kind, simulated cycle) of every fault fired, in order
        self.fired: list[tuple[str, int]] = []

    def fire(self, kind: str, now: int = 0) -> bool:
        """One injection opportunity for ``kind``; True if the fault fires.

        Draws are consumed even when the per-kind cap has been reached, so
        the decision sequence for a kind depends only on its opportunity
        index — never on how other kinds are configured.
        """
        draw = self._rngs[kind].random()
        if kind not in self.plan.kinds:
            return False
        if self.counts[kind] >= self.plan.max_per_kind:
            return False
        if draw >= self.plan.rate:
            return False
        self.counts[kind] += 1
        self.fired.append((kind, now))
        return True

    def maybe_raise(self, kind: str, now: int = 0) -> None:
        """Raise :class:`InjectedFault` if ``kind`` fires at this opportunity."""
        if self.fire(kind, now):
            raise InjectedFault(kind)

    def corrupt_record(self, pc: Pc, addr: int) -> tuple[Pc, int]:
        """Mutate one traced reference (only called during a corrupt burst).

        Three deterministic flavours: a garbage (possibly negative) address,
        an address from a wild region of the address space, or a pc naming a
        procedure that does not exist — the last one survives analysis and
        detonates in the dynamic editor instead, exercising the deeper
        failure path.
        """
        rng = self._record_rng
        if rng.random() >= self.plan.record_corrupt_rate:
            return pc, addr
        flavour = rng.randrange(3)
        if flavour == 0:
            return pc, -((addr ^ 0x5A5A_5A5A) & 0x7FFF_FFFF) - 1
        if flavour == 1:
            return pc, (addr * 2_654_435_761) & 0x7FFF_FFFC
        return Pc(CORRUPT_PROC, rng.randrange(1 << 16)), addr
