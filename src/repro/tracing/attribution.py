"""Cycle attribution: charge every simulated cycle to one category.

The interpreter's cost model is a sum of explicit charges (see
:class:`~repro.machine.config.MachineConfig`), so a finished run's cycle
count decomposes *exactly*:

``cycles = instructions + mem_stall + checks*check_cost +
trace_charges*trace_cost + detect_cycles + prefetches*prefetch_issue_cost +
charged_cycles``

:class:`CycleAttribution` materializes that identity per run — the per-
workload version of Figure 11's Base/Prof/Hds decomposition, with the "Hds"
bar further split into trace recording, DFSM detection, prefetch issue and
analysis.  ``conserved`` asserts the identity holds to the cycle; the oracle
invariant :func:`repro.oracle.invariants.check_cycle_attribution` runs it on
every measurement level.

Everything here is arithmetic over counters the run already produced —
building an attribution never touches the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids interp import
    from repro.interp.interpreter import ExecStats
    from repro.machine.config import MachineConfig

#: Attribution categories, in report order, with display labels.
CATEGORY_LABELS = (
    ("user_work", "user work (1 cycle/instruction)"),
    ("mem_stall", "memory stall"),
    ("check_overhead", "bursty-tracing checks (Base)"),
    ("trace_record", "trace recording (Prof)"),
    ("dfsm_detect", "DFSM detection handlers"),
    ("prefetch_issue", "prefetch issue"),
    ("analysis", "online analysis (Hds)"),
)
CATEGORIES = tuple(name for name, _ in CATEGORY_LABELS)


@dataclass(frozen=True)
class CycleAttribution:
    """Exact decomposition of one run's simulated cycles."""

    total: int
    user_work: int
    mem_stall: int
    check_overhead: int
    trace_record: int
    dfsm_detect: int
    prefetch_issue: int
    analysis: int

    @classmethod
    def from_run(cls, stats: "ExecStats", machine: "MachineConfig") -> "CycleAttribution":
        """Attribute a finished run's cycles from its counters + cost model."""
        return cls(
            total=stats.cycles,
            user_work=stats.instructions,
            mem_stall=stats.mem_stall_cycles,
            check_overhead=stats.checks_executed * machine.check_cost,
            trace_record=stats.trace_charges * machine.trace_cost,
            dfsm_detect=stats.detect_cycles,
            prefetch_issue=stats.prefetches_issued * machine.prefetch_issue_cost,
            analysis=stats.charged_cycles,
        )

    @property
    def attributed(self) -> int:
        """Sum over all categories; equals ``total`` when conserved."""
        return sum(getattr(self, name) for name in CATEGORIES)

    @property
    def unattributed(self) -> int:
        """Cycles the categories fail to cover (0 on a healthy run)."""
        return self.total - self.attributed

    @property
    def conserved(self) -> bool:
        """True when every simulated cycle is charged to exactly one category."""
        return self.unattributed == 0

    def share(self, category: str) -> float:
        """Fraction of total cycles charged to ``category``."""
        return getattr(self, category) / self.total if self.total else 0.0

    def rows(self) -> list[tuple[str, int, float]]:
        """(label, cycles, share) per category, report order, nonzero-last-kept."""
        return [
            (label, getattr(self, name), self.share(name))
            for name, label in CATEGORY_LABELS
        ]

    def to_dict(self) -> dict[str, int]:
        out: dict[str, int] = {"total": self.total}
        for name in CATEGORIES:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CycleAttribution":
        """Inverse of :meth:`to_dict` (summary documents round-trip)."""
        return cls(
            total=int(data.get("total", 0)),
            **{name: int(data.get(name, 0)) for name in CATEGORIES},
        )


#: Raw counter fields tracked per procedure, in :class:`ProcAttrRecorder`
#: row order.  Deliberately the *counters* (not cycles): the per-category
#: cycle split is derived later from the machine's cost model, exactly as
#: :meth:`CycleAttribution.from_run` does for the whole run, and the
#: scheduler-owned clock (which tenancy may advance between slices) can
#: never skew the procedure split.
PROC_COUNTER_FIELDS = (
    "icount", "mem_stall", "nchecks", "trace_chg", "detect_cyc", "pf_issued", "charged",
)


class ProcAttrRecorder:
    """Per-procedure counter deltas, charged at procedure boundaries.

    The dispatch loops (reference and compiled) call :meth:`charge` with the
    *absolute* run counters at every point where control changes procedure —
    CALL before the switch, RET before the pop, and every park/finish — so
    each delta lands on the procedure that was executing while it accrued.
    Between charge points the counters only ever grow inside one procedure,
    which makes the split exact: summing any column over ``rows`` recovers
    the run total.

    PC→procedure mapping piggybacks on ``proc.name``: both the static dual
    versions and dynamically injected copies preserve the original
    procedure's name (see :func:`repro.vulcan.dynamic_edit.optimized_copy`),
    so a procedure's row aggregates over every code version it ran under.
    The paper's Section 3.2 stale-frame caveat applies unchanged: a frame
    still executing a removed copy runs to completion and keeps charging to
    the same name — which is exactly the attribution a reader wants.

    Pickles with the interpreter (plain dict + marks), so checkpointed runs
    resume their attribution mid-flight.
    """

    __slots__ = ("rows", "_marks")

    def __init__(self) -> None:
        #: procedure name -> counter deltas in PROC_COUNTER_FIELDS order
        self.rows: dict[str, list[int]] = {}
        self._marks = [0] * len(PROC_COUNTER_FIELDS)

    def charge(
        self,
        name: str,
        icount: int,
        mem_stall: int,
        nchecks: int,
        trace_chg: int,
        detect_cyc: int,
        pf_issued: int,
        charged: int,
    ) -> None:
        """Charge counter growth since the previous charge point to ``name``."""
        marks = self._marks
        row = self.rows.get(name)
        if row is None:
            row = self.rows[name] = [0] * len(marks)
        row[0] += icount - marks[0]
        row[1] += mem_stall - marks[1]
        row[2] += nchecks - marks[2]
        row[3] += trace_chg - marks[3]
        row[4] += detect_cyc - marks[4]
        row[5] += pf_issued - marks[5]
        row[6] += charged - marks[6]
        marks[0] = icount
        marks[1] = mem_stall
        marks[2] = nchecks
        marks[3] = trace_chg
        marks[4] = detect_cyc
        marks[5] = pf_issued
        marks[6] = charged

    def charge_state(self, state) -> None:
        """Charge from a parked :class:`~repro.interp.interpreter.ExecState`."""
        self.charge(
            state.proc.name,
            state.icount,
            state.mem_stall,
            state.nchecks,
            state.trace_chg,
            state.detect_cyc,
            state.pf_issued,
            state.charged,
        )

    def __getstate__(self) -> dict:
        return {"rows": self.rows, "marks": self._marks}

    def __setstate__(self, state: dict) -> None:
        self.rows = state["rows"]
        self._marks = state["marks"]


@dataclass(frozen=True)
class ProcAttribution:
    """The 7-category cycle split with a procedure dimension.

    ``rows`` maps procedure name -> :class:`CycleAttribution` whose ``total``
    is that procedure's attributed cycles.  :meth:`totals` recovers the
    whole-run split; the oracle invariant
    :func:`repro.oracle.invariants.check_proc_attribution` pins that it
    equals :meth:`CycleAttribution.from_run` category by category.
    """

    rows: tuple[tuple[str, CycleAttribution], ...]

    @classmethod
    def from_recorder(
        cls, recorder: ProcAttrRecorder, machine: "MachineConfig"
    ) -> "ProcAttribution":
        """Derive per-procedure cycle categories from recorded counters."""
        built = []
        for name, row in recorder.rows.items():
            icount, mem_stall, nchecks, trace_chg, detect_cyc, pf_issued, charged = row
            categories = dict(
                user_work=icount,
                mem_stall=mem_stall,
                check_overhead=nchecks * machine.check_cost,
                trace_record=trace_chg * machine.trace_cost,
                dfsm_detect=detect_cyc,
                prefetch_issue=pf_issued * machine.prefetch_issue_cost,
                analysis=charged,
            )
            built.append((name, CycleAttribution(total=sum(categories.values()), **categories)))
        built.sort(key=lambda kv: (-kv[1].total, kv[0]))
        return cls(rows=tuple(built))

    def totals(self) -> dict[str, int]:
        """Column sums over every procedure, keyed by category (plus total)."""
        out = {name: 0 for name in CATEGORIES}
        out["total"] = 0
        for _, att in self.rows:
            out["total"] += att.total
            for name in CATEGORIES:
                out[name] += getattr(att, name)
        return out

    def to_dict(self) -> dict[str, dict[str, int]]:
        """JSON view preserving row order: proc name -> category cycles."""
        return {name: att.to_dict() for name, att in self.rows}

    @classmethod
    def from_dict(cls, data: dict) -> "ProcAttribution":
        return cls(
            rows=tuple(
                (name, CycleAttribution.from_dict(doc)) for name, doc in data.items()
            )
        )
