"""Cycle attribution: charge every simulated cycle to one category.

The interpreter's cost model is a sum of explicit charges (see
:class:`~repro.machine.config.MachineConfig`), so a finished run's cycle
count decomposes *exactly*:

``cycles = instructions + mem_stall + checks*check_cost +
trace_charges*trace_cost + detect_cycles + prefetches*prefetch_issue_cost +
charged_cycles``

:class:`CycleAttribution` materializes that identity per run — the per-
workload version of Figure 11's Base/Prof/Hds decomposition, with the "Hds"
bar further split into trace recording, DFSM detection, prefetch issue and
analysis.  ``conserved`` asserts the identity holds to the cycle; the oracle
invariant :func:`repro.oracle.invariants.check_cycle_attribution` runs it on
every measurement level.

Everything here is arithmetic over counters the run already produced —
building an attribution never touches the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids interp import
    from repro.interp.interpreter import ExecStats
    from repro.machine.config import MachineConfig

#: Attribution categories, in report order, with display labels.
CATEGORY_LABELS = (
    ("user_work", "user work (1 cycle/instruction)"),
    ("mem_stall", "memory stall"),
    ("check_overhead", "bursty-tracing checks (Base)"),
    ("trace_record", "trace recording (Prof)"),
    ("dfsm_detect", "DFSM detection handlers"),
    ("prefetch_issue", "prefetch issue"),
    ("analysis", "online analysis (Hds)"),
)
CATEGORIES = tuple(name for name, _ in CATEGORY_LABELS)


@dataclass(frozen=True)
class CycleAttribution:
    """Exact decomposition of one run's simulated cycles."""

    total: int
    user_work: int
    mem_stall: int
    check_overhead: int
    trace_record: int
    dfsm_detect: int
    prefetch_issue: int
    analysis: int

    @classmethod
    def from_run(cls, stats: "ExecStats", machine: "MachineConfig") -> "CycleAttribution":
        """Attribute a finished run's cycles from its counters + cost model."""
        return cls(
            total=stats.cycles,
            user_work=stats.instructions,
            mem_stall=stats.mem_stall_cycles,
            check_overhead=stats.checks_executed * machine.check_cost,
            trace_record=stats.trace_charges * machine.trace_cost,
            dfsm_detect=stats.detect_cycles,
            prefetch_issue=stats.prefetches_issued * machine.prefetch_issue_cost,
            analysis=stats.charged_cycles,
        )

    @property
    def attributed(self) -> int:
        """Sum over all categories; equals ``total`` when conserved."""
        return sum(getattr(self, name) for name in CATEGORIES)

    @property
    def unattributed(self) -> int:
        """Cycles the categories fail to cover (0 on a healthy run)."""
        return self.total - self.attributed

    @property
    def conserved(self) -> bool:
        """True when every simulated cycle is charged to exactly one category."""
        return self.unattributed == 0

    def share(self, category: str) -> float:
        """Fraction of total cycles charged to ``category``."""
        return getattr(self, category) / self.total if self.total else 0.0

    def rows(self) -> list[tuple[str, int, float]]:
        """(label, cycles, share) per category, report order, nonzero-last-kept."""
        return [
            (label, getattr(self, name), self.share(name))
            for name, label in CATEGORY_LABELS
        ]

    def to_dict(self) -> dict[str, int]:
        out: dict[str, int] = {"total": self.total}
        for name in CATEGORIES:
            out[name] = getattr(self, name)
        return out
