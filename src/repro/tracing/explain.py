"""`repro-bench explain`: per-stream prefetch scorecards with cycle context.

Answers the question the aggregate tables can't: *which* hot data streams
earned their keep.  One instrumented run (span tracing + prefetch ledger at
full sampling) is executed per workload, and every stream that issued a
prefetch gets a scorecard — fate histogram, timeliness distribution,
watchdog verdicts, and an estimated cycles-saved figure set against the
run's cycle-attribution breakdown.

Kept out of ``repro.tracing.__init__`` on purpose: this module pulls in the
bench runner (and through it the whole workload stack), while the package
root stays importable from the interpreter's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import OptimizerConfig
from repro.errors import ConfigError
from repro.machine.config import PAPER_MACHINE, MachineConfig
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink
from repro.tracing.attribution import CycleAttribution
from repro.tracing.ledger import StreamLedgerStats


def _percentile(values: list, fraction: float) -> int:
    """Nearest-rank percentile of an unsorted list (0 when empty)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


@dataclass
class StreamScorecard:
    """One stream's prefetch ledger rolled up for presentation."""

    sid: str
    name: str
    stats: StreamLedgerStats
    #: watchdog rollback verdicts that named this stream (reason strings)
    verdicts: list = field(default_factory=list)
    #: stall cycles the hierarchy would have charged without this stream's
    #: prefetches — useful hits save a full memory round trip, late ones
    #: save the portion already covered when the demand access arrived.
    #: An upper bound: it ignores second-order cache-occupancy effects.
    est_saved: int = 0

    @property
    def fate_row(self) -> tuple:
        s = self.stats
        return (s.useful, s.late, s.redundant, s.polluting, s.wasted, s.inflight)


@dataclass
class WorkloadExplanation:
    """Everything ``repro-bench explain`` knows about one workload run."""

    workload: str
    level: str
    cycles: int
    attribution: CycleAttribution
    scorecards: list
    #: ledger-vs-PrefetchStats mismatches (empty on a healthy run)
    mismatches: list = field(default_factory=list)

    def scorecard(self, sid: str) -> StreamScorecard:
        for card in self.scorecards:
            if card.sid == sid:
                return card
        known = ", ".join(c.sid for c in self.scorecards) or "(none)"
        raise ConfigError(f"unknown stream id {sid!r}; known: {known}")


def explain_level(
    name: str,
    level: str = "dyn",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    passes: Optional[int] = None,
) -> WorkloadExplanation:
    """Run ``name`` at ``level`` with full tracing and build its explanation."""
    from repro.bench.runner import run_level

    sink = ListSink()
    session = TelemetrySession(
        sinks=[sink],
        miss_sample_every=1,
        prefetch_sample_every=1,
        tracing=True,
        track_prefetches=True,
    )
    result = run_level(name, level, machine, opt, passes=passes, telemetry=session)
    ledger = session.ledger
    hierarchy = result.hierarchy

    verdicts: dict[str, list] = {}
    for event in sink.events:
        if event.kind == "StreamDeoptimized":
            verdicts.setdefault(event.stream, []).append(event.reason)

    cards = []
    per_stream = ledger.per_stream()
    ordered = sorted(per_stream.items(), key=lambda kv: (-kv[1].issued, str(kv[0])))
    for index, (key, stats) in enumerate(ordered, start=1):
        stream_name = hierarchy.stream_names.get(key, str(key))
        saved = stats.useful * machine.memory_latency
        for residual in stats.residuals:
            saved += max(0, machine.memory_latency - residual)
        cards.append(
            StreamScorecard(
                sid=f"s{index}",
                name=stream_name,
                stats=stats,
                verdicts=verdicts.get(stream_name, []),
                est_saved=saved,
            )
        )

    mismatches = ledger.reconcile(hierarchy.prefetch)
    for key, stats in per_stream.items():
        hier = hierarchy.stream_stats.get(key)
        if hier is None:
            mismatches.append(f"ledger stream {key!r} unknown to the hierarchy")
            continue
        for attr in ("issued", "useful", "late"):
            if getattr(hier, attr) != getattr(stats, attr):
                mismatches.append(
                    f"stream {key!r} {attr}: ledger {getattr(stats, attr)} "
                    f"!= hierarchy {getattr(hier, attr)}"
                )

    return WorkloadExplanation(
        workload=name,
        level=level,
        cycles=result.cycles,
        attribution=CycleAttribution.from_run(result.stats, machine),
        scorecards=cards,
        mismatches=mismatches,
    )


def render_explanation(exp: WorkloadExplanation, stream: Optional[str] = None) -> str:
    """Render an explanation (or one stream's detailed view) as text."""
    from repro.bench.reporting import format_table

    blocks = []
    att = exp.attribution
    rows = [(label, cycles, f"{share:6.2%}") for label, cycles, share in att.rows()]
    rows.append(("total", att.total, f"{1.0:6.2%}"))
    blocks.append(
        format_table(
            ("category", "cycles", "share"),
            rows,
            title=f"{exp.workload}/{exp.level}: cycle attribution ({exp.cycles} cycles)",
        )
    )

    if stream is not None:
        card = exp.scorecard(stream)
        s = card.stats
        detail = [
            f"stream {card.sid}: {card.name}",
            f"  issued     {s.issued}",
            f"  useful     {s.useful}",
            f"  late       {s.late}",
            f"  redundant  {s.redundant}",
            f"  polluting  {s.polluting}",
            f"  wasted     {s.wasted}",
            f"  inflight   {s.inflight}",
            f"  accuracy   {s.accuracy:.2%}  timeliness {s.timeliness:.2%}",
            f"  lead p50/p90 (cycles)  {_percentile(s.leads, 0.5)}/{_percentile(s.leads, 0.9)}",
            f"  est. stall cycles saved  {card.est_saved}"
            f"  ({card.est_saved / exp.cycles:.2%} of run)",
        ]
        if card.verdicts:
            detail.append("  watchdog verdicts: " + "; ".join(card.verdicts))
        else:
            detail.append("  watchdog verdicts: none")
        blocks.append("\n".join(detail))
    else:
        rows = []
        for card in exp.scorecards:
            s = card.stats
            rows.append(
                (
                    card.sid,
                    card.name,
                    s.issued,
                    s.useful,
                    s.late,
                    s.redundant,
                    s.polluting + s.wasted,
                    f"{s.accuracy:.0%}",
                    _percentile(s.leads, 0.5),
                    card.est_saved,
                    len(card.verdicts),
                )
            )
        if rows:
            blocks.append(
                format_table(
                    (
                        "id",
                        "stream",
                        "issued",
                        "useful",
                        "late",
                        "redun",
                        "bad",
                        "acc",
                        "lead-p50",
                        "est-saved",
                        "verdicts",
                    ),
                    rows,
                    title=f"per-stream scorecards ({len(rows)} streams)",
                )
            )
        else:
            blocks.append("no stream issued a prefetch at this level")

    if exp.mismatches:
        blocks.append(
            "LEDGER MISMATCHES:\n" + "\n".join(f"  - {m}" for m in exp.mismatches)
        )
    return "\n\n".join(blocks)
