"""`repro-bench explain`: per-stream prefetch scorecards with cycle context.

Answers the question the aggregate tables can't: *which* hot data streams
earned their keep.  One instrumented run (span tracing + prefetch ledger at
full sampling) is executed per workload, and every stream that issued a
prefetch gets a scorecard — fate histogram, timeliness distribution,
watchdog verdicts, and an estimated cycles-saved figure set against the
run's cycle-attribution breakdown.

Kept out of ``repro.tracing.__init__`` on purpose: this module pulls in the
bench runner (and through it the whole workload stack), while the package
root stays importable from the interpreter's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import OptimizerConfig
from repro.errors import ConfigError
from repro.machine.config import PAPER_MACHINE, MachineConfig
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink
from repro.tracing.attribution import CycleAttribution, ProcAttribution
from repro.tracing.ledger import StreamLedgerStats


def _percentile(values: list, fraction: float) -> int:
    """Nearest-rank percentile of an unsorted list (0 when empty)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


@dataclass
class StreamScorecard:
    """One stream's prefetch ledger rolled up for presentation."""

    sid: str
    name: str
    stats: StreamLedgerStats
    #: watchdog rollback verdicts that named this stream (reason strings)
    verdicts: list = field(default_factory=list)
    #: stall cycles the hierarchy would have charged without this stream's
    #: prefetches — useful hits save a full memory round trip, late ones
    #: save the portion already covered when the demand access arrived.
    #: An upper bound: it ignores second-order cache-occupancy effects.
    est_saved: int = 0

    @property
    def fate_row(self) -> tuple:
        s = self.stats
        return (s.useful, s.late, s.redundant, s.polluting, s.wasted, s.inflight)


@dataclass
class WorkloadExplanation:
    """Everything ``repro-bench explain`` knows about one workload run."""

    workload: str
    level: str
    cycles: int
    attribution: CycleAttribution
    scorecards: list
    #: ledger-vs-PrefetchStats mismatches (empty on a healthy run)
    mismatches: list = field(default_factory=list)
    #: per-procedure cycle attribution (``--by-proc``); None when not recorded
    by_proc: Optional[ProcAttribution] = None
    #: True when built offline from a trace/chunk summary (no scorecards)
    offline: bool = False

    def scorecard(self, sid: str) -> StreamScorecard:
        for card in self.scorecards:
            if card.sid == sid:
                return card
        known = ", ".join(c.sid for c in self.scorecards) or "(none)"
        raise ConfigError(f"unknown stream id {sid!r}; known: {known}")


def explain_level(
    name: str,
    level: str = "dyn",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    passes: Optional[int] = None,
    by_proc: bool = False,
) -> WorkloadExplanation:
    """Run ``name`` at ``level`` with full tracing and build its explanation.

    ``by_proc=True`` additionally records per-procedure cycle attribution
    (the 7-category split gains a procedure dimension; see
    :class:`~repro.tracing.attribution.ProcAttrRecorder` for the PC→procedure
    mapping rules and the Section 3.2 stale-frame caveat).
    """
    from repro.bench.runner import run_level

    sink = ListSink()
    session = TelemetrySession(
        sinks=[sink],
        miss_sample_every=1,
        prefetch_sample_every=1,
        tracing=True,
        track_prefetches=True,
        proc_attribution=by_proc,
    )
    result = run_level(name, level, machine, opt, passes=passes, telemetry=session)
    ledger = session.ledger
    hierarchy = result.hierarchy

    verdicts: dict[str, list] = {}
    for event in sink.events:
        if event.kind == "StreamDeoptimized":
            verdicts.setdefault(event.stream, []).append(event.reason)

    cards = []
    per_stream = ledger.per_stream()
    ordered = sorted(per_stream.items(), key=lambda kv: (-kv[1].issued, str(kv[0])))
    for index, (key, stats) in enumerate(ordered, start=1):
        stream_name = hierarchy.stream_names.get(key, str(key))
        saved = stats.useful * machine.memory_latency
        for residual in stats.residuals:
            saved += max(0, machine.memory_latency - residual)
        cards.append(
            StreamScorecard(
                sid=f"s{index}",
                name=stream_name,
                stats=stats,
                verdicts=verdicts.get(stream_name, []),
                est_saved=saved,
            )
        )

    mismatches = ledger.reconcile(hierarchy.prefetch)
    for key, stats in per_stream.items():
        hier = hierarchy.stream_stats.get(key)
        if hier is None:
            mismatches.append(f"ledger stream {key!r} unknown to the hierarchy")
            continue
        for attr in ("issued", "useful", "late"):
            if getattr(hier, attr) != getattr(stats, attr):
                mismatches.append(
                    f"stream {key!r} {attr}: ledger {getattr(stats, attr)} "
                    f"!= hierarchy {getattr(hier, attr)}"
                )

    return WorkloadExplanation(
        workload=name,
        level=level,
        cycles=result.cycles,
        attribution=CycleAttribution.from_run(result.stats, machine),
        scorecards=cards,
        mismatches=mismatches,
        by_proc=(
            ProcAttribution.from_recorder(session.proc_attr, machine)
            if by_proc and session.proc_attr is not None
            else None
        ),
    )


def offline_explanations(path) -> list[WorkloadExplanation]:
    """Rebuild explanations from a trace artifact, without re-simulating.

    ``path`` may be a chunk directory (:mod:`repro.obs.chunks`) or a
    monolithic Chrome trace JSON written with summaries — the two carry the
    same per-run summary documents, so ``repro-bench explain --from`` accepts
    them interchangeably.  Stream scorecards need a live ledger and are not
    part of summaries; offline explanations carry attribution (and per-proc
    rows when the traced run recorded them) only.
    """
    import json
    import os

    from repro.obs.chunks import is_chunk_dir, load_chunks

    if is_chunk_dir(path):
        load = load_chunks(path)
        summaries = load.summaries
    elif os.path.isfile(path):
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigError(f"cannot read {path} as a trace JSON: {exc}") from exc
        summaries = document.get("reproSummaries", []) if isinstance(document, dict) else []
    else:
        raise ConfigError(f"{path} is neither a chunk directory nor a trace JSON file")
    out = []
    for doc in summaries:
        if not isinstance(doc, dict):
            continue
        by_proc_doc = doc.get("by_proc")
        out.append(
            WorkloadExplanation(
                workload=str(doc.get("workload", "?")),
                level=str(doc.get("level", "?")),
                cycles=int(doc.get("cycles", 0)),
                attribution=CycleAttribution.from_dict(doc.get("attribution", {})),
                scorecards=[],
                by_proc=(
                    ProcAttribution.from_dict(by_proc_doc)
                    if isinstance(by_proc_doc, dict)
                    else None
                ),
                offline=True,
            )
        )
    if not out:
        raise ConfigError(
            f"{path} carries no run summaries; re-export with --stream or "
            "a summaries-enabled trace"
        )
    return out


@dataclass
class LevelDiff:
    """Two runs of one workload at different levels, lined up for diffing.

    Built from engine results (``repro-bench explain --against``), so both
    sides replay from the result cache when their fingerprints are warm —
    attribution and prefetch counters survive serialization, which is all a
    diff needs.  ``from_cache`` flags report where each side came from.
    """

    workload: str
    level_a: str
    level_b: str
    cycles_a: int
    cycles_b: int
    attribution_a: CycleAttribution
    attribution_b: CycleAttribution
    prefetch_a: dict[str, int]
    prefetch_b: dict[str, int]
    from_cache_a: bool = False
    from_cache_b: bool = False

    @property
    def overhead_pct(self) -> float:
        """Percent cycle change of side B relative to side A."""
        if self.cycles_a == 0:
            raise ConfigError(
                f"cannot normalize {self.workload}/{self.level_b} against "
                f"{self.workload}/{self.level_a}: baseline ran 0 cycles"
            )
        return 100.0 * (self.cycles_b - self.cycles_a) / self.cycles_a


def _prefetch_counters(result) -> dict[str, int]:
    pf = result.hierarchy.prefetch
    return {
        "issued": pf.issued,
        "useful": pf.useful,
        "late": pf.late,
        "redundant": pf.redundant,
        "wasted": pf.wasted,
    }


def diff_levels(
    name: str,
    level: str,
    against: str = "orig",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    passes: Optional[int] = None,
    store=None,
) -> LevelDiff:
    """Compare ``level`` against ``against`` for one workload.

    Both runs go through the engine (:func:`repro.engine.run_spec`), so with
    a :class:`~repro.engine.cache.ResultStore` attached either side replays
    from the content-addressed cache instead of simulating.
    """
    from repro.engine.executor import run_spec
    from repro.engine.spec import RunSpec

    opt = opt if opt is not None else OptimizerConfig()
    result_a = run_spec(
        RunSpec(name, against, passes=passes, machine=machine, opt=opt), store=store
    )
    result_b = run_spec(
        RunSpec(name, level, passes=passes, machine=machine, opt=opt), store=store
    )
    return LevelDiff(
        workload=name,
        level_a=against,
        level_b=level,
        cycles_a=result_a.cycles,
        cycles_b=result_b.cycles,
        attribution_a=CycleAttribution.from_run(result_a.stats, machine),
        attribution_b=CycleAttribution.from_run(result_b.stats, machine),
        prefetch_a=_prefetch_counters(result_a),
        prefetch_b=_prefetch_counters(result_b),
        from_cache_a=result_a.from_cache,
        from_cache_b=result_b.from_cache,
    )


def render_level_diff(diff: LevelDiff) -> str:
    """Render a :class:`LevelDiff` as aligned attribution/prefetch tables."""
    from repro.bench.reporting import format_table

    def origin(from_cache: bool) -> str:
        return "cached" if from_cache else "live"

    title = (
        f"{diff.workload}: {diff.level_a} ({origin(diff.from_cache_a)}) vs "
        f"{diff.level_b} ({origin(diff.from_cache_b)}) — "
        f"{diff.cycles_a} -> {diff.cycles_b} cycles ({diff.overhead_pct:+.1f}%)"
    )
    rows = []
    for (label, cycles_a, _), (_, cycles_b, _) in zip(
        diff.attribution_a.rows(), diff.attribution_b.rows()
    ):
        rows.append((label, cycles_a, cycles_b, cycles_b - cycles_a))
    rows.append(("total", diff.cycles_a, diff.cycles_b, diff.cycles_b - diff.cycles_a))
    blocks = [
        format_table(
            ("category", diff.level_a, diff.level_b, "delta"),
            rows,
            title=title,
        )
    ]
    pf_rows = [
        (key, diff.prefetch_a[key], diff.prefetch_b[key], diff.prefetch_b[key] - diff.prefetch_a[key])
        for key in diff.prefetch_a
    ]
    blocks.append(
        format_table(
            ("prefetch", diff.level_a, diff.level_b, "delta"),
            pf_rows,
            title="prefetch fates",
        )
    )
    return "\n\n".join(blocks)


def render_explanation(exp: WorkloadExplanation, stream: Optional[str] = None) -> str:
    """Render an explanation (or one stream's detailed view) as text."""
    from repro.bench.reporting import format_table

    blocks = []
    att = exp.attribution
    rows = [(label, cycles, f"{share:6.2%}") for label, cycles, share in att.rows()]
    rows.append(("total", att.total, f"{1.0:6.2%}"))
    blocks.append(
        format_table(
            ("category", "cycles", "share"),
            rows,
            title=f"{exp.workload}/{exp.level}: cycle attribution ({exp.cycles} cycles)",
        )
    )

    if exp.by_proc is not None:
        proc_rows = []
        for proc_name, att_p in exp.by_proc.rows:
            proc_rows.append(
                (
                    proc_name,
                    att_p.total,
                    att_p.user_work,
                    att_p.mem_stall,
                    att_p.check_overhead,
                    att_p.trace_record,
                    att_p.dfsm_detect,
                    att_p.prefetch_issue,
                    att_p.analysis,
                )
            )
        totals = exp.by_proc.totals()
        proc_rows.append(
            (
                "total",
                totals["total"],
                totals["user_work"],
                totals["mem_stall"],
                totals["check_overhead"],
                totals["trace_record"],
                totals["dfsm_detect"],
                totals["prefetch_issue"],
                totals["analysis"],
            )
        )
        blocks.append(
            format_table(
                ("procedure", "cycles", "work", "stall", "check", "trace", "detect", "pf", "analysis"),
                proc_rows,
                title=f"per-procedure attribution ({len(exp.by_proc.rows)} procedures)",
            )
        )

    if exp.offline:
        blocks.append(
            "(offline explanation from trace summaries; per-stream scorecards "
            "need a live run)"
        )
    elif stream is not None:
        card = exp.scorecard(stream)
        s = card.stats
        detail = [
            f"stream {card.sid}: {card.name}",
            f"  issued     {s.issued}",
            f"  useful     {s.useful}",
            f"  late       {s.late}",
            f"  redundant  {s.redundant}",
            f"  polluting  {s.polluting}",
            f"  wasted     {s.wasted}",
            f"  inflight   {s.inflight}",
            f"  accuracy   {s.accuracy:.2%}  timeliness {s.timeliness:.2%}",
            f"  lead p50/p90 (cycles)  {_percentile(s.leads, 0.5)}/{_percentile(s.leads, 0.9)}",
            f"  est. stall cycles saved  {card.est_saved}"
            f"  ({card.est_saved / exp.cycles:.2%} of run)",
        ]
        if card.verdicts:
            detail.append("  watchdog verdicts: " + "; ".join(card.verdicts))
        else:
            detail.append("  watchdog verdicts: none")
        blocks.append("\n".join(detail))
    else:
        rows = []
        for card in exp.scorecards:
            s = card.stats
            rows.append(
                (
                    card.sid,
                    card.name,
                    s.issued,
                    s.useful,
                    s.late,
                    s.redundant,
                    s.polluting + s.wasted,
                    f"{s.accuracy:.0%}",
                    _percentile(s.leads, 0.5),
                    card.est_saved,
                    len(card.verdicts),
                )
            )
        if rows:
            blocks.append(
                format_table(
                    (
                        "id",
                        "stream",
                        "issued",
                        "useful",
                        "late",
                        "redun",
                        "bad",
                        "acc",
                        "lead-p50",
                        "est-saved",
                        "verdicts",
                    ),
                    rows,
                    title=f"per-stream scorecards ({len(rows)} streams)",
                )
            )
        else:
            blocks.append("no stream issued a prefetch at this level")

    if exp.mismatches:
        blocks.append(
            "LEDGER MISMATCHES:\n" + "\n".join(f"  - {m}" for m in exp.mismatches)
        )
    return "\n\n".join(blocks)
