"""Per-prefetch lifecycle ledger: every issued prefetch, issue to fate.

The aggregate :class:`~repro.machine.hierarchy.PrefetchStats` answers *how
many* prefetches were useful/late/wasted; this ledger answers *which ones* —
it follows every :meth:`~repro.machine.hierarchy.MemoryHierarchy.issue_prefetch`
from its issue cycle, source tag and originating hot stream to its terminal
fate, with issue→use cycle deltas.  Fates refine the aggregate taxonomy:

==============  ===========================================================
``redundant``   target was already cache-resident or in flight (no-op)
``useful``      a demand access consumed the block after its data arrived
``late``        a demand access arrived first and paid the residual stall
``polluting``   evicted without serving a demand access (displaced data)
``wasted``      still unused at a cache flush or end of run
``inflight``    not yet classified (only while the run is live)
==============  ===========================================================

``polluting + wasted`` together equal the aggregate ``wasted`` counter;
:meth:`PrefetchLedger.reconcile` checks the full correspondence.

The ledger is host-side bookkeeping attached via
:attr:`MemoryHierarchy.ledger` (``None`` by default — the hierarchy's hot
paths pay one ``is not None`` check per *classification*, not per access).
Recording never changes stall accounting; the tracing observer-effect
invariant pins this down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Terminal fates, in report order.
TERMINAL_FATES = ("redundant", "useful", "late", "polluting", "wasted")
FATES = TERMINAL_FATES + ("inflight",)


@dataclass(slots=True)
class PrefetchRecord:
    """One issued prefetch and everything that happened to it."""

    block: int
    issued_at: int
    source: str
    #: originating stream key (None = unattributed: head block, hw prefetch,
    #: or issued outside an install window)
    stream: Optional[object]
    fate: str = "inflight"
    fate_cycle: int = -1
    #: issue→use distance in cycles (useful/late only)
    lead: int = 0
    #: residual stall paid by the demand access (late only)
    residual: int = 0


@dataclass
class StreamLedgerStats:
    """Per-stream aggregation of ledger records (scorecard raw material)."""

    issued: int = 0
    redundant: int = 0
    useful: int = 0
    late: int = 0
    polluting: int = 0
    wasted: int = 0
    inflight: int = 0
    leads: list[int] = field(default_factory=list)
    residuals: list[int] = field(default_factory=list)

    @property
    def used(self) -> int:
        return self.useful + self.late

    @property
    def classified(self) -> int:
        """Non-redundant prefetches that met a terminal fate."""
        return self.useful + self.late + self.polluting + self.wasted

    @property
    def accuracy(self) -> float:
        total = self.classified
        return self.used / total if total else 0.0

    @property
    def timeliness(self) -> float:
        used = self.used
        return self.useful / used if used else 0.0


class PrefetchLedger:
    """Accumulates :class:`PrefetchRecord` entries over one run.

    The hierarchy calls the ``on_*`` hooks at exactly the points where it
    updates :class:`~repro.machine.hierarchy.PrefetchStats`, so ledger totals
    and aggregate counters agree by construction; drift between them is a
    bug that :meth:`reconcile` reports.
    """

    def __init__(self) -> None:
        self.records: list[PrefetchRecord] = []
        #: block -> its open (non-redundant, unclassified) record
        self._open: dict[int, PrefetchRecord] = {}
        self.fate_counts: dict[str, int] = {fate: 0 for fate in TERMINAL_FATES}

    # ------------------------------------------------------- hierarchy hooks

    def on_issue(
        self, block: int, cycle: int, source: str, stream: Optional[object], redundant: bool
    ) -> None:
        record = PrefetchRecord(block=block, issued_at=cycle, source=source, stream=stream)
        self.records.append(record)
        if redundant:
            record.fate = "redundant"
            record.fate_cycle = cycle
            self.fate_counts["redundant"] += 1
            return
        # The hierarchy never double-opens a block: a re-prefetch of a block
        # with an open record is always classified redundant (it is either
        # L1-resident or in flight).  Guard anyway so a future regression
        # shows up as an orphaned record, not silent corruption.
        orphan = self._open.get(block)
        if orphan is not None:
            self._close(orphan, "wasted", cycle)
        self._open[block] = record

    def on_use(self, block: int, cycle: int, late: bool, lead: int, residual: int = 0) -> None:
        record = self._open.pop(block, None)
        if record is None:
            return
        record.lead = lead
        record.residual = residual
        self._close(record, "late" if late else "useful", cycle)

    def on_evict(self, block: int, cycle: int) -> None:
        """The block left the hierarchy unused mid-run: pure pollution."""
        record = self._open.pop(block, None)
        if record is not None:
            self._close(record, "polluting", cycle)

    def on_expire(self, block: int, cycle: int) -> None:
        """Still unused at a flush or at end of run: wasted."""
        record = self._open.pop(block, None)
        if record is not None:
            self._close(record, "wasted", cycle)

    def _close(self, record: PrefetchRecord, fate: str, cycle: int) -> None:
        record.fate = fate
        record.fate_cycle = cycle
        self.fate_counts[fate] += 1

    # ---------------------------------------------------------- aggregation

    @property
    def issued(self) -> int:
        return len(self.records)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def per_stream(self) -> dict[Optional[object], StreamLedgerStats]:
        """Aggregate records by originating stream (None = unattributed)."""
        out: dict[Optional[object], StreamLedgerStats] = {}
        for record in self.records:
            stats = out.get(record.stream)
            if stats is None:
                stats = out[record.stream] = StreamLedgerStats()
            stats.issued += 1
            setattr(stats, record.fate, getattr(stats, record.fate) + 1)
            if record.fate in ("useful", "late"):
                stats.leads.append(record.lead)
                if record.fate == "late":
                    stats.residuals.append(record.residual)
        return out

    def reconcile(self, prefetch_stats) -> list[str]:
        """Diff ledger totals against a :class:`PrefetchStats`; [] = agree.

        The aggregate ``wasted`` counter covers both mid-run pollution and
        end-of-run expiry, so it corresponds to ``polluting + wasted`` here.
        """
        mismatches: list[str] = []
        counts = self.fate_counts

        def check(label: str, ledger_value: int, stats_value: int) -> None:
            if ledger_value != stats_value:
                mismatches.append(f"{label}: ledger {ledger_value} != stats {stats_value}")

        check("issued", self.issued, prefetch_stats.issued)
        check("redundant", counts["redundant"], prefetch_stats.redundant)
        check("useful", counts["useful"], prefetch_stats.useful)
        check("late", counts["late"], prefetch_stats.late)
        check("wasted", counts["polluting"] + counts["wasted"], prefetch_stats.wasted)
        if self._open:
            mismatches.append(f"{len(self._open)} records still open (run not finalized?)")
        return mismatches
