"""repro.tracing — causal observability for the simulator itself.

Three coordinated ledgers over one run (DESIGN §5d):

* :mod:`repro.tracing.spans` — a span tree on the simulated-cycle timeline
  (run → optimizer epoch → burst / analysis / injection / watchdog), emitted
  through the telemetry bus with a null-sink zero-overhead fast path;
* :mod:`repro.tracing.ledger` — the per-prefetch lifecycle ledger, following
  every issued prefetch from its originating hot stream to its terminal fate;
* :mod:`repro.tracing.attribution` — exact per-category cycle attribution
  (Figure 11's decomposition, conserved to the cycle).

:mod:`repro.tracing.explain` (imported on demand by the CLI, not here — it
pulls in the bench runner) turns all three into per-stream scorecards.
"""

from repro.tracing.attribution import CATEGORIES, CycleAttribution
from repro.tracing.ledger import (
    FATES,
    TERMINAL_FATES,
    PrefetchLedger,
    PrefetchRecord,
    StreamLedgerStats,
)
from repro.tracing.spans import (
    NULL_TRACER,
    SPAN_CATEGORIES,
    NullTracer,
    Span,
    SpanCollector,
    SpanTracer,
)

__all__ = [
    "CATEGORIES",
    "CycleAttribution",
    "FATES",
    "TERMINAL_FATES",
    "PrefetchLedger",
    "PrefetchRecord",
    "StreamLedgerStats",
    "NULL_TRACER",
    "SPAN_CATEGORIES",
    "NullTracer",
    "Span",
    "SpanCollector",
    "SpanTracer",
]
