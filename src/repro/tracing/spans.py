"""Causal span tracing for the simulator itself.

:mod:`repro.profiling` profiles the *subject* program (the paper's bursty
tracing); this module traces the *simulator* — which phase the optimizer was
in, when analysis ran and what it cost, when handlers were injected and when
the watchdog intervened — as a tree of **spans** keyed on simulated cycles.

A span is an interval ``[begin_cycle, end_cycle]`` with a name, a taxonomy
``category`` and an optional free-form ``detail`` string.  Spans nest: the
run span contains the optimizer's epoch spans, which contain analysis /
injection / watchdog spans; profiling bursts (``BurstBegin``/``BurstEnd``)
are synthesized into spans by the collector so the existing events need no
change.

Zero-overhead guarantee: :class:`SpanTracer` rides the existing telemetry
:class:`~repro.telemetry.events.EventBus`.  With no sinks attached the bus is
disabled, ``begin`` returns 0 without emitting, and instrumented code pays
one attribute check — and because span events are *descriptive only* (like
every telemetry event), enabling them never charges simulated cycles.  The
oracle invariant :func:`repro.oracle.invariants.check_tracing_observer_effect`
pins both properties down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.events import (
    BurstBegin,
    BurstEnd,
    Event,
    RunEnd,
    SpanBegin,
    SpanEnd,
)

#: Span taxonomy (DESIGN §5d): every span carries one of these tags.
SPAN_CATEGORIES = (
    "run",        # one (workload, level) execution
    "epoch",      # one optimizer phase period (awake or hibernating)
    "burst",      # one instrumented burst (synthesized from Burst* events)
    "analysis",   # hot-stream analysis / reinstall work charged to sim time
    "injection",  # dynamic Vulcan patching (instantaneous in the cost model)
    "watchdog",   # a watchdog poll, containing any targeted rollback
)


class SpanTracer:
    """Emits ``SpanBegin``/``SpanEnd`` through a telemetry bus.

    The tracer keeps the stack of open span ids so ``begin`` can default a
    new span's parent to the innermost open span, and ``close_all`` can wind
    the stack down at end of run (innermost first, so B/E pairs nest).
    """

    __slots__ = ("bus", "_next_id", "_open")

    def __init__(self, bus) -> None:
        self.bus = bus
        self._next_id = 0
        self._open: list[int] = []

    @property
    def enabled(self) -> bool:
        return self.bus.enabled

    def begin(self, cycle: int, name: str, category: str, parent: int = 0, detail: str = "") -> int:
        """Open a span at ``cycle``; returns its id (0 when tracing is off).

        ``parent=0`` means "the innermost currently-open span" (the natural
        nesting); pass an explicit id to attach elsewhere in the tree.
        """
        if not self.bus.enabled:
            return 0
        self._next_id += 1
        sid = self._next_id
        if parent == 0 and self._open:
            parent = self._open[-1]
        self.bus.emit(SpanBegin(cycle, sid, parent, name, category, detail))
        self._open.append(sid)
        return sid

    def end(self, cycle: int, span_id: int) -> None:
        """Close the span ``span_id`` at ``cycle`` (no-op for id 0)."""
        if not span_id or not self.bus.enabled:
            return
        try:
            self._open.remove(span_id)
        except ValueError:
            pass
        self.bus.emit(SpanEnd(cycle, span_id))

    def close_all(self, cycle: int) -> None:
        """Close every still-open span (end of run), innermost first."""
        if not self.bus.enabled:
            self._open.clear()
            return
        for sid in reversed(self._open):
            self.bus.emit(SpanEnd(cycle, sid))
        self._open.clear()


class NullTracer:
    """Disabled tracer: ``begin`` returns 0 and everything is a no-op."""

    enabled = False

    def begin(self, cycle: int, name: str, category: str, parent: int = 0, detail: str = "") -> int:
        return 0

    def end(self, cycle: int, span_id: int) -> None:
        pass

    def close_all(self, cycle: int) -> None:
        pass


#: Shared default for components that hold a tracer slot.
NULL_TRACER = NullTracer()


@dataclass
class Span:
    """One reconstructed span of the tree."""

    span_id: int
    parent_id: int
    name: str
    category: str
    detail: str
    begin: int
    end: Optional[int] = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> int:
        """Cycles covered; an unclosed span reports 0."""
        return (self.end - self.begin) if self.end is not None else 0


class SpanCollector:
    """Telemetry sink reconstructing the span tree from the event stream.

    Also synthesizes ``burst`` spans from the interpreter's existing
    ``BurstBegin``/``BurstEnd`` events (negative synthetic ids, parented to
    the innermost open ``epoch`` span when there is one), so the hot CHECK
    path needs no extra instrumentation.  ``RunEnd`` closes a burst left
    open at the end of the run.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._open: list[Span] = []
        self._burst: Optional[Span] = None
        self._next_synthetic = -1

    def handle(self, event: Event) -> None:
        if isinstance(event, SpanBegin):
            span = Span(
                span_id=event.span_id,
                parent_id=event.parent_id,
                name=event.name,
                category=event.category,
                detail=event.detail,
                begin=event.cycle,
            )
            self.spans.append(span)
            self._by_id[span.span_id] = span
            parent = self._by_id.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
            self._open.append(span)
        elif isinstance(event, SpanEnd):
            span = self._by_id.get(event.span_id)
            if span is not None and span.end is None:
                span.end = event.cycle
                if span in self._open:
                    self._open.remove(span)
        elif isinstance(event, BurstBegin):
            parent_id = 0
            for open_span in reversed(self._open):
                if open_span.category == "epoch":
                    parent_id = open_span.span_id
                    break
            burst = Span(
                span_id=self._next_synthetic,
                parent_id=parent_id,
                name="burst",
                category="burst",
                detail="",
                begin=event.cycle,
            )
            self._next_synthetic -= 1
            self.spans.append(burst)
            self._by_id[burst.span_id] = burst
            parent = self._by_id.get(parent_id)
            if parent is not None:
                parent.children.append(burst)
            self._burst = burst
        elif isinstance(event, BurstEnd):
            if self._burst is not None:
                self._burst.end = event.cycle
                self._burst = None
        elif isinstance(event, RunEnd):
            if self._burst is not None:
                self._burst.end = event.cycle
                self._burst = None

    def roots(self) -> list[Span]:
        """Spans whose parent was never seen (normally just the run span)."""
        return [s for s in self.spans if s.parent_id not in self._by_id]

    def tree_lines(self, max_children: int = 8) -> list[str]:
        """Indented text rendering of the tree (for reports and debugging)."""
        lines: list[str] = []

        def visit(span: Span, depth: int) -> None:
            extent = f"[{span.begin}..{span.end if span.end is not None else '?'}]"
            detail = f"  {span.detail}" if span.detail else ""
            lines.append(f"{'  ' * depth}{span.category}:{span.name} {extent}{detail}")
            shown = span.children[:max_children]
            for child in shown:
                visit(child, depth + 1)
            if len(span.children) > len(shown):
                lines.append(f"{'  ' * (depth + 1)}... {len(span.children) - len(shown)} more")

        for root in self.roots():
            visit(root, 0)
        return lines
