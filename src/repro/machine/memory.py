"""Flat word-granular memory with a bump allocator.

Simulated memory stores one Python integer per *word* (4 bytes).  Addresses
are byte addresses and must be word-aligned; the heap hands out aligned
chunks.  Workload builders use :meth:`Memory.allocate` to lay out pointer
structures before execution, and programs may also allocate at simulated run
time through the ``ALLOC`` instruction.

Allocation order matters to this reproduction: the Seq-pref baseline of
Figure 12 only wins when hot data streams are *sequentially allocated*, so
workloads control layout by choosing the order of ``allocate`` calls (and
optionally padding between them).
"""

from __future__ import annotations

from repro.errors import MemoryFault

WORD_BYTES = 4

#: Heap addresses start here; low memory is reserved for globals/statics.
HEAP_BASE = 0x1000_0000
#: Static/global data region base.
STATIC_BASE = 0x0010_0000


class Memory:
    """Sparse word-addressed memory plus a bump allocator."""

    def __init__(self, heap_base: int = HEAP_BASE) -> None:
        self._words: dict[int, int] = {}
        self._heap_base = heap_base
        self._brk = heap_base
        self._static_brk = STATIC_BASE

    @property
    def heap_break(self) -> int:
        """Current top of the heap (next allocation address)."""
        return self._brk

    def allocate(self, size_bytes: int, align: int = WORD_BYTES) -> int:
        """Allocate ``size_bytes`` from the heap; return the base address."""
        if size_bytes <= 0:
            raise MemoryFault(f"allocation size must be positive, got {size_bytes}")
        if align < WORD_BYTES or align & (align - 1):
            raise MemoryFault(f"bad alignment {align}")
        base = (self._brk + align - 1) & ~(align - 1)
        self._brk = base + ((size_bytes + WORD_BYTES - 1) & ~(WORD_BYTES - 1))
        return base

    def allocate_static(self, size_bytes: int) -> int:
        """Allocate from the static region (for globals laid out at build time)."""
        if size_bytes <= 0:
            raise MemoryFault(f"allocation size must be positive, got {size_bytes}")
        base = self._static_brk
        self._static_brk = base + ((size_bytes + WORD_BYTES - 1) & ~(WORD_BYTES - 1))
        if self._static_brk > self._heap_base:
            raise MemoryFault("static region overflowed into the heap")
        return base

    def load(self, addr: int) -> int:
        """Read the word at byte address ``addr`` (must be word-aligned)."""
        if addr % WORD_BYTES:
            raise MemoryFault(f"unaligned load at {addr:#x}")
        if addr < 0:
            raise MemoryFault(f"negative address {addr:#x}")
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        """Write ``value`` to the word at byte address ``addr``."""
        if addr % WORD_BYTES:
            raise MemoryFault(f"unaligned store at {addr:#x}")
        if addr < 0:
            raise MemoryFault(f"negative address {addr:#x}")
        self._words[addr] = value

    def store_words(self, base: int, values: list[int]) -> None:
        """Bulk-initialise consecutive words starting at ``base``."""
        for i, value in enumerate(values):
            self.store(base + i * WORD_BYTES, value)

    def load_words(self, base: int, count: int) -> list[int]:
        """Bulk-read ``count`` consecutive words starting at ``base``."""
        return [self.load(base + i * WORD_BYTES) for i in range(count)]

    @property
    def footprint_words(self) -> int:
        """Number of words ever written (for inspection)."""
        return len(self._words)
