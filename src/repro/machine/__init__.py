"""Simulated machine substrate: caches, memory, and the timing model."""

from repro.machine.cache import Cache
from repro.machine.config import PAPER_MACHINE, CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy, PrefetchStats
from repro.machine.memory import HEAP_BASE, WORD_BYTES, Memory

__all__ = [
    "Cache",
    "CacheGeometry",
    "MachineConfig",
    "PAPER_MACHINE",
    "MemoryHierarchy",
    "PrefetchStats",
    "Memory",
    "WORD_BYTES",
    "HEAP_BASE",
]
