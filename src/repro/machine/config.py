"""Machine configuration: cache geometry and cycle-cost model.

The paper measured on a 550 MHz Pentium III with a 16 KB 4-way L1 data cache
and a 256 KB 8-way L2, both with 32-byte blocks (Section 4.1).  The defaults
below reproduce that geometry.  Latencies are in simulated cycles and follow
typical values for that era: an L1 hit is free (folded into the 1-cycle
instruction cost), an L1 miss that hits in L2 pays ``l2_latency``, and a miss
to memory pays ``memory_latency``.

The cost knobs for checks, trace records, DFSM detection and prefetch issue
model the instrumentation overhead that Figures 11 and 12 measure; they are
deliberately explicit so experiments can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int = 32

    def __post_init__(self) -> None:
        if not _is_pow2(self.block_bytes):
            raise ConfigError(f"block_bytes must be a power of two, got {self.block_bytes}")
        if self.associativity < 1:
            raise ConfigError(f"associativity must be >= 1, got {self.associativity}")
        if self.size_bytes % (self.block_bytes * self.associativity) != 0:
            raise ConfigError(
                f"size {self.size_bytes} is not divisible by "
                f"block*assoc = {self.block_bytes * self.associativity}"
            )
        if not _is_pow2(self.num_sets):
            raise ConfigError(f"number of sets must be a power of two, got {self.num_sets}")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.block_bytes * self.associativity)

    @property
    def num_blocks(self) -> int:
        """Total number of block frames."""
        return self.size_bytes // self.block_bytes

    def to_dict(self) -> dict[str, int]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "size_bytes": self.size_bytes,
            "associativity": self.associativity,
            "block_bytes": self.block_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CacheGeometry":
        """Inverse of :meth:`to_dict` (re-validates through ``__post_init__``)."""
        return cls(
            size_bytes=int(data["size_bytes"]),
            associativity=int(data["associativity"]),
            block_bytes=int(data.get("block_bytes", 32)),
        )


@dataclass(frozen=True)
class MachineConfig:
    """Complete timing and geometry model of the simulated machine.

    Attributes:
        l1: L1 data cache geometry (paper: 16 KB, 4-way, 32 B blocks).
        l2: L2 unified cache geometry (paper: 256 KB, 8-way, 32 B blocks).
        l2_latency: extra cycles for an L1 miss that hits in L2.
        memory_latency: extra cycles for a miss that goes to memory.
        check_cost: cycles consumed by one executed ``CHECK`` (counter
            decrement plus conditional branch; the paper's "Base" overhead).
        trace_cost: extra cycles per data reference recorded while executing
            the instrumented code version (the paper's "Prof" overhead).
        detect_base: fixed cycles for entering an injected detection handler.
        detect_per_case: cycles per (state, address) case examined inside a
            detection handler before the match is resolved.
        prefetch_issue_cost: cycles to issue one prefetch instruction.
        analysis_cost_per_symbol: simulated cycles charged per traced symbol
            when the online Sequitur + hot-data-stream analysis runs (the
            paper's "Hds" overhead); the analysis genuinely runs, this only
            charges its cost to simulated time.
    """

    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(16 * 1024, 4))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(256 * 1024, 8))
    l2_latency: int = 12
    memory_latency: int = 100
    check_cost: int = 2
    trace_cost: int = 6
    detect_base: int = 1
    detect_per_case: int = 1
    prefetch_issue_cost: int = 1
    analysis_cost_per_symbol: int = 4

    def __post_init__(self) -> None:
        if self.l1.block_bytes != self.l2.block_bytes:
            raise ConfigError("L1 and L2 must share a block size in this model")
        for name in (
            "l2_latency",
            "memory_latency",
            "check_cost",
            "trace_cost",
            "detect_base",
            "detect_per_case",
            "prefetch_issue_cost",
            "analysis_cost_per_symbol",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.memory_latency < self.l2_latency:
            raise ConfigError("memory_latency must be >= l2_latency")

    @property
    def block_bytes(self) -> int:
        """Cache block size shared by both levels."""
        return self.l1.block_bytes

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "l2_latency": self.l2_latency,
            "memory_latency": self.memory_latency,
            "check_cost": self.check_cost,
            "trace_cost": self.trace_cost,
            "detect_base": self.detect_base,
            "detect_per_case": self.detect_per_case,
            "prefetch_issue_cost": self.prefetch_issue_cost,
            "analysis_cost_per_symbol": self.analysis_cost_per_symbol,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "MachineConfig":
        """Inverse of :meth:`to_dict` (re-validates through ``__post_init__``)."""
        return cls(
            l1=CacheGeometry.from_dict(data["l1"]),
            l2=CacheGeometry.from_dict(data["l2"]),
            l2_latency=int(data["l2_latency"]),
            memory_latency=int(data["memory_latency"]),
            check_cost=int(data["check_cost"]),
            trace_cost=int(data["trace_cost"]),
            detect_base=int(data["detect_base"]),
            detect_per_case=int(data["detect_per_case"]),
            prefetch_issue_cost=int(data["prefetch_issue_cost"]),
            analysis_cost_per_symbol=int(data["analysis_cost_per_symbol"]),
        )


#: Geometry and latencies matching the paper's Pentium III testbed.
PAPER_MACHINE = MachineConfig()
