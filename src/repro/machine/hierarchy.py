"""Two-level memory hierarchy with software-prefetch modelling.

This is the component that makes prefetching *mean something* in a Python
reproduction of the paper: every simulated load/store is charged stall cycles
according to where its block is found, and a ``prefetcht0``-style prefetch
installs the block into both levels immediately (so a wrong prefetch pollutes
the cache, the effect that sinks the Seq-pref baseline in Figure 12) with a
*ready cycle*; a demand access that arrives before the ready cycle pays only
the residual latency (the timeliness effect Section 1 calls out).

The hierarchy also keeps the counters the evaluation needs: per-level
hits/misses and the accuracy/timeliness/pollution breakdown of prefetches.
When the optimizer installs a block -> stream attribution map
(:meth:`MemoryHierarchy.set_stream_attribution`), the same classification
points additionally credit each outcome to the hot data stream whose handler
issued the prefetch (``stream_stats``) — the input of the resilience
watchdog's per-stream scoreboard.  Attribution is bookkeeping only and never
changes stall accounting.

Telemetry: the hierarchy emits :class:`~repro.telemetry.events.PrefetchIssued`,
``PrefetchUsed`` (with the issue-to-use lead distance), ``PrefetchEvicted``
(pollution), ``CacheMiss`` and ``CacheFlushed`` events into the bus assigned
to :attr:`MemoryHierarchy.telemetry`.  The high-rate kinds (misses and the
prefetch life cycle) are *sampled* — one event per ``miss_sample_every`` /
``prefetch_sample_every`` occurrences, deterministic counters, so a run's
event log is reproducible and ``emitted == occurrences // period`` exactly;
set the periods to 1 for exhaustive logs.  Exact totals always come from the
:class:`PrefetchStats`/cache counters, which the telemetry session reconciles
into its metrics registry.  Emission never changes stall accounting — runs
are cycle-identical with telemetry on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cache import Cache
from repro.machine.config import MachineConfig
from repro.telemetry.events import (
    CacheFlushed,
    CacheMiss,
    PrefetchEvicted,
    PrefetchIssued,
    PrefetchUsed,
)
from repro.telemetry.sinks import NULL_SINK


@dataclass
class PrefetchStats:
    """Outcome counters for issued prefetches."""

    issued: int = 0
    #: prefetched block was already cache-resident (no-op prefetch)
    redundant: int = 0
    #: a demand access hit a prefetched block after its data arrived
    useful: int = 0
    #: a demand access hit a prefetched block before arrival (partial stall)
    late: int = 0
    #: prefetched block evicted (or never touched) without a demand hit
    wasted: int = 0
    #: issued prefetches per issuer tag ("sw"/"static"/"stride"/"markov"),
    #: so Figure 12's Seq-pref/Dyn-pref bars are attributable by source
    by_source: dict[str, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Fraction of non-redundant prefetches that served a demand access."""
        used = self.useful + self.late
        total = used + self.wasted
        return used / total if total else 0.0

    @property
    def timeliness(self) -> float:
        """Fraction of *used* prefetches whose data arrived in time."""
        used = self.useful + self.late
        return self.useful / used if used else 0.0

    @property
    def pollution(self) -> float:
        """Fraction of non-redundant prefetches that only displaced data."""
        total = self.useful + self.late + self.wasted
        return self.wasted / total if total else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (sorted ``by_source`` for stable diffs)."""
        return {
            "issued": self.issued,
            "redundant": self.redundant,
            "useful": self.useful,
            "late": self.late,
            "wasted": self.wasted,
            "by_source": {k: self.by_source[k] for k in sorted(self.by_source)},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "PrefetchStats":
        """Inverse of :meth:`to_dict`."""
        by_source = data.get("by_source", {}) or {}
        return cls(
            issued=int(data["issued"]),
            redundant=int(data["redundant"]),
            useful=int(data["useful"]),
            late=int(data["late"]),
            wasted=int(data["wasted"]),
            by_source={str(k): int(v) for k, v in sorted(by_source.items())},
        )


@dataclass
class StreamPrefetchStats:
    """Per-stream slice of :class:`PrefetchStats` (watchdog scoreboard input).

    Attribution is pure bookkeeping: these counters are updated at the same
    classification points as the aggregate stats and never influence stall
    accounting, so runs are cycle-identical with attribution on or off.
    """

    issued: int = 0
    redundant: int = 0
    useful: int = 0
    late: int = 0
    wasted: int = 0

    @property
    def classified(self) -> int:
        """Non-redundant prefetches that have met their fate."""
        return self.useful + self.late + self.wasted

    @property
    def accuracy(self) -> float:
        """Fraction of classified prefetches that served a demand access."""
        used = self.useful + self.late
        total = used + self.wasted
        return used / total if total else 0.0

    def to_dict(self) -> dict[str, int]:
        """JSON-serializable view."""
        return {
            "issued": self.issued,
            "redundant": self.redundant,
            "useful": self.useful,
            "late": self.late,
            "wasted": self.wasted,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "StreamPrefetchStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: int(data[k]) for k in ("issued", "redundant", "useful", "late", "wasted")})


@dataclass
class CacheLevelStats:
    """Frozen counter view of one :class:`~repro.machine.cache.Cache` level.

    Duck-types the counter surface of the live cache (``hits``/``misses``/
    ``evictions``/``accesses``) so consumers of a deserialized
    :class:`HierarchyStats` read the same attributes as on a live run.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CacheLevelStats":
        return cls(hits=int(data["hits"]), misses=int(data["misses"]), evictions=int(data["evictions"]))


@dataclass
class HierarchyStats:
    """Serializable statistics snapshot of a finished hierarchy.

    Carries everything the bench/oracle layers read off a finished run's
    :class:`MemoryHierarchy` — per-level counters, the prefetch
    classification and the per-stream attribution — without the live cache
    state, so a :class:`~repro.engine.result.RunResult` can round-trip
    through the result cache bit-identically.  Stream attribution keys are
    the human-readable stream names (live hierarchies key by opaque stream
    identity objects; the snapshot resolves them through ``stream_names``).
    """

    l1: CacheLevelStats = field(default_factory=CacheLevelStats)
    l2: CacheLevelStats = field(default_factory=CacheLevelStats)
    demand_accesses: int = 0
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    stream_stats: dict[str, StreamPrefetchStats] = field(default_factory=dict)
    stream_names: dict[str, str] = field(default_factory=dict)

    @property
    def l1_miss_rate(self) -> float:
        """L1 miss rate over all demand accesses (mirrors the live property)."""
        return self.l1.misses / self.l1.accesses if self.l1.accesses else 0.0

    def stats_snapshot(self) -> "HierarchyStats":
        """A snapshot of a snapshot is itself (mirrors the live method)."""
        return self

    @classmethod
    def capture(cls, hierarchy: "MemoryHierarchy") -> "HierarchyStats":
        """Freeze the counters of a live (finalized) hierarchy."""
        def name_of(key: object) -> str:
            return hierarchy.stream_names.get(key, str(key))

        return cls(
            l1=CacheLevelStats(hierarchy.l1.hits, hierarchy.l1.misses, hierarchy.l1.evictions),
            l2=CacheLevelStats(hierarchy.l2.hits, hierarchy.l2.misses, hierarchy.l2.evictions),
            demand_accesses=hierarchy.demand_accesses,
            prefetch=PrefetchStats.from_dict(hierarchy.prefetch.to_dict()),
            stream_stats={
                name_of(key): StreamPrefetchStats.from_dict(stats.to_dict())
                for key, stats in sorted(
                    hierarchy.stream_stats.items(), key=lambda kv: name_of(kv[0])
                )
            },
            stream_names={
                name_of(key): name_of(key) for key in sorted(hierarchy.stream_names, key=name_of)
            },
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view; inverse of :meth:`from_dict`."""
        return {
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "demand_accesses": self.demand_accesses,
            "prefetch": self.prefetch.to_dict(),
            "stream_stats": {name: s.to_dict() for name, s in sorted(self.stream_stats.items())},
            "stream_names": {k: self.stream_names[k] for k in sorted(self.stream_names)},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "HierarchyStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            l1=CacheLevelStats.from_dict(data["l1"]),
            l2=CacheLevelStats.from_dict(data["l2"]),
            demand_accesses=int(data["demand_accesses"]),
            prefetch=PrefetchStats.from_dict(data["prefetch"]),
            stream_stats={
                str(name): StreamPrefetchStats.from_dict(s)
                for name, s in sorted(data.get("stream_stats", {}).items())
            },
            stream_names={str(k): str(v) for k, v in sorted(data.get("stream_names", {}).items())},
        )


class MemoryHierarchy:
    """L1 + L2 + DRAM with LRU fill, demand misses and software prefetch."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1 = Cache(config.l1, "L1")
        self.l2 = Cache(config.l2, "L2")
        self._block_shift = config.block_bytes.bit_length() - 1
        #: block -> cycle at which its in-flight prefetch completes
        self._inflight: dict[int, int] = {}
        #: blocks brought in by prefetch and not yet used by a demand access,
        #: mapped to their issue cycle (for lead-time telemetry)
        self._prefetched_unused: dict[int, int] = {}
        self.prefetch = PrefetchStats()
        self.demand_accesses = 0
        #: telemetry bus (``.enabled``/``.emit``); NULL_SINK = off
        self.telemetry = NULL_SINK
        #: emit one CacheMiss event per this many demand misses
        self.miss_sample_every = 64
        #: emit one PrefetchIssued/Used/Evicted event per this many occurrences
        self.prefetch_sample_every = 32
        self._misses_since_sample = 0
        self._issued_since_sample = 0
        self._used_since_sample = 0
        self._evicted_since_sample = 0
        #: block -> stream key for prefetch targets of the *current* install
        #: (None = attribution off; the watchdog-enabled optimizer sets it)
        self._stream_map: dict[int, object] | None = None
        #: in-flight attribution: prefetched-but-unclassified block -> stream
        self._stream_of: dict[int, object] = {}
        #: cumulative per-stream outcome counters (never reset mid-run)
        self.stream_stats: dict[object, StreamPrefetchStats] = {}
        #: stream key -> human-readable identity, filled by the optimizer at
        #: install time so scorecards can render attribution keys
        self.stream_names: dict[object, str] = {}
        #: per-prefetch lifecycle ledger (duck-typed ``on_*`` hooks; None =
        #: off).  Recording is bookkeeping only and never changes stalls.
        self.ledger = None

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self._block_shift

    # --------------------------------------------------- per-stream attribution

    def set_stream_attribution(self, mapping: dict[int, object] | None) -> None:
        """Install (or clear) the block -> stream-key map for issued prefetches.

        The optimizer rebuilds this map at every install from the handlers'
        prefetch targets.  Prefetches already in flight keep the attribution
        they were issued under; ``stream_stats`` accumulates across installs.
        Attribution never changes hit/miss/stall behaviour — only the
        watchdog's scoreboard reads it.
        """
        self._stream_map = mapping

    def _note_outcome(self, block: int, outcome: str) -> None:
        """Credit a classified prefetch to its issuing stream, if attributed."""
        key = self._stream_of.pop(block, None)
        if key is None:
            return
        stats = self.stream_stats.get(key)
        if stats is None:
            stats = self.stream_stats[key] = StreamPrefetchStats()
        setattr(stats, outcome, getattr(stats, outcome) + 1)

    def access(self, addr: int, now: int) -> int:
        """Perform a demand access at cycle ``now``; return stall cycles."""
        self.demand_accesses += 1
        block = addr >> self._block_shift
        stall = 0
        telem = self.telemetry
        inflight = self._inflight
        if block in inflight:
            ready = inflight.pop(block)
            if ready > now:
                stall = ready - now
                self.prefetch.late += 1
                if self._stream_of:
                    self._note_outcome(block, "late")
                issued_at = self._prefetched_unused.pop(block, now)
                if self.ledger is not None:
                    self.ledger.on_use(block, now, True, now - issued_at, stall)
                if telem.enabled:
                    # Sampling countdown is inlined at the hot sites: a helper
                    # call per occurrence alone costs measurable wall-clock.
                    n = self._used_since_sample + 1
                    if n >= self.prefetch_sample_every:
                        n = 0
                        telem.emit(PrefetchUsed(now, block, True, now - issued_at))
                    self._used_since_sample = n
            # on-time arrivals are counted below when the L1 lookup hits
        if self.l1.lookup(block):
            if block in self._prefetched_unused:
                issued_at = self._prefetched_unused.pop(block)
                self.prefetch.useful += 1
                if self._stream_of:
                    self._note_outcome(block, "useful")
                if self.ledger is not None:
                    self.ledger.on_use(block, now, False, now - issued_at)
                if telem.enabled:
                    n = self._used_since_sample + 1
                    if n >= self.prefetch_sample_every:
                        n = 0
                        telem.emit(PrefetchUsed(now, block, False, now - issued_at))
                    self._used_since_sample = n
            return stall
        if self.l2.lookup(block):
            stall += self.config.l2_latency
            if block in self._prefetched_unused:
                issued_at = self._prefetched_unused.pop(block)
                self.prefetch.useful += 1
                if self._stream_of:
                    self._note_outcome(block, "useful")
                if self.ledger is not None:
                    self.ledger.on_use(block, now, False, now - issued_at)
                if telem.enabled:
                    n = self._used_since_sample + 1
                    if n >= self.prefetch_sample_every:
                        n = 0
                        telem.emit(PrefetchUsed(now, block, False, now - issued_at))
                    self._used_since_sample = n
            level = "L1"
        else:
            stall += self.config.memory_latency
            self._install_l2(block, now)
            level = "L2"
        if telem.enabled:
            self._misses_since_sample += 1
            if self._misses_since_sample >= self.miss_sample_every:
                self._misses_since_sample = 0
                telem.emit(CacheMiss(now, level, block, stall))
        self._install_l1(block, now)
        return stall

    def issue_prefetch(self, addr: int, now: int, source: str = "sw") -> None:
        """Issue a ``prefetcht0``-style prefetch for the block of ``addr``.

        The block is installed in both cache levels right away (it occupies a
        frame and can evict useful data — pollution) and becomes *ready* after
        the fetch latency; demand accesses before then pay the residual.
        ``source`` tags the telemetry event ("sw" for injected handlers,
        "stride"/"markov" for the hardware baselines).
        """
        self.prefetch.issued += 1
        by_source = self.prefetch.by_source
        by_source[source] = by_source.get(source, 0) + 1
        block = addr >> self._block_shift
        telem = self.telemetry
        ledger = self.ledger
        smap = self._stream_map
        skey = smap.get(block) if smap is not None else None
        if skey is not None:
            sstats = self.stream_stats.get(skey)
            if sstats is None:
                sstats = self.stream_stats[skey] = StreamPrefetchStats()
            sstats.issued += 1
        if self.l1.contains(block) or block in self._inflight:
            self.prefetch.redundant += 1
            if skey is not None:
                sstats.redundant += 1
            if ledger is not None:
                ledger.on_issue(block, now, source, skey, True)
            if telem.enabled:
                n = self._issued_since_sample + 1
                if n >= self.prefetch_sample_every:
                    n = 0
                    telem.emit(PrefetchIssued(now, block, source, True))
                self._issued_since_sample = n
            return
        if ledger is not None:
            ledger.on_issue(block, now, source, skey, False)
        if telem.enabled:
            n = self._issued_since_sample + 1
            if n >= self.prefetch_sample_every:
                n = 0
                telem.emit(PrefetchIssued(now, block, source, False))
            self._issued_since_sample = n
        if self.l2.contains(block):
            # L2-resident: promote to L1 quickly.
            self._inflight[block] = now + self.config.l2_latency
        else:
            self._inflight[block] = now + self.config.memory_latency
            self._install_l2(block, now)
        self._install_l1(block, now)
        self._prefetched_unused[block] = now
        if skey is not None:
            self._stream_of[block] = skey

    # ------------------------------------------------- sampled event emission
    # The issued/used countdowns are inlined at their hot call sites in
    # ``access``/``issue_prefetch``; only the colder eviction path keeps a
    # helper.

    def _emit_evicted(self, telem, now: int, block: int, at_finalize: bool) -> None:
        self._evicted_since_sample += 1
        if self._evicted_since_sample >= self.prefetch_sample_every:
            self._evicted_since_sample = 0
            telem.emit(PrefetchEvicted(now, block, at_finalize))

    def _install_l1(self, block: int, now: int) -> None:
        victim = self.l1.install(block)
        if victim is not None:
            self._account_eviction(victim, l1_only=True, now=now)

    def _install_l2(self, block: int, now: int) -> None:
        victim = self.l2.install(block)
        if victim is not None:
            # Model inclusion: an L2 eviction also removes the L1 copy.
            self.l1.invalidate(victim)
            self._account_eviction(victim, l1_only=False, now=now)

    def _account_eviction(self, victim: int, l1_only: bool, now: int) -> None:
        if victim in self._prefetched_unused:
            # A prefetched block that falls out of L2 (or out of L1 while
            # absent from L2) without being used was pure pollution.
            if not l1_only or not self.l2.contains(victim):
                del self._prefetched_unused[victim]
                self._inflight.pop(victim, None)
                self.prefetch.wasted += 1
                if self._stream_of:
                    self._note_outcome(victim, "wasted")
                if self.ledger is not None:
                    self.ledger.on_evict(victim, now)
                if self.telemetry.enabled:
                    self._emit_evicted(self.telemetry, now, victim, False)

    def finalize(self, now: int = 0) -> None:
        """Classify still-unused prefetched blocks as wasted (end of run)."""
        telem = self.telemetry
        if telem.enabled:
            for block in self._prefetched_unused:
                self._emit_evicted(telem, now, block, True)
        if self._stream_of:
            for block in self._prefetched_unused:
                self._note_outcome(block, "wasted")
        if self.ledger is not None:
            for block in self._prefetched_unused:
                self.ledger.on_expire(block, now)
        self.prefetch.wasted += len(self._prefetched_unused)
        self._prefetched_unused.clear()
        self._inflight.clear()

    def flush(self, now: int = 0) -> None:
        """Empty both cache levels and forget in-flight prefetches.

        Hit/miss/eviction counters and prefetch statistics are preserved (the
        same guarantee :meth:`Cache.flush` documents); prefetched blocks that
        never served a demand access are classified as wasted, so the
        ``issued == redundant + useful + late + wasted`` invariant survives a
        mid-run flush followed by :meth:`finalize`.
        """
        telem = self.telemetry
        if telem.enabled:
            for block in self._prefetched_unused:
                self._emit_evicted(telem, now, block, False)
        if self._stream_of:
            for block in self._prefetched_unused:
                self._note_outcome(block, "wasted")
        if self.ledger is not None:
            for block in self._prefetched_unused:
                self.ledger.on_expire(block, now)
        self.prefetch.wasted += len(self._prefetched_unused)
        if telem.enabled:
            telem.emit(
                CacheFlushed(
                    now,
                    len(self.l1.resident_blocks()),
                    len(self.l2.resident_blocks()),
                )
            )
        self.l1.flush()
        self.l2.flush()
        self._inflight.clear()
        self._prefetched_unused.clear()

    @property
    def l1_miss_rate(self) -> float:
        """L1 miss rate over all demand accesses."""
        return self.l1.misses / self.l1.accesses if self.l1.accesses else 0.0

    def stats_snapshot(self) -> HierarchyStats:
        """Freeze this hierarchy's counters into a serializable snapshot."""
        return HierarchyStats.capture(self)
