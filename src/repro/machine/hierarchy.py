"""Two-level memory hierarchy with software-prefetch modelling.

This is the component that makes prefetching *mean something* in a Python
reproduction of the paper: every simulated load/store is charged stall cycles
according to where its block is found, and a ``prefetcht0``-style prefetch
installs the block into both levels immediately (so a wrong prefetch pollutes
the cache, the effect that sinks the Seq-pref baseline in Figure 12) with a
*ready cycle*; a demand access that arrives before the ready cycle pays only
the residual latency (the timeliness effect Section 1 calls out).

The hierarchy also keeps the counters the evaluation needs: per-level
hits/misses and the accuracy/timeliness/pollution breakdown of prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import Cache
from repro.machine.config import MachineConfig


@dataclass
class PrefetchStats:
    """Outcome counters for issued prefetches."""

    issued: int = 0
    #: prefetched block was already cache-resident (no-op prefetch)
    redundant: int = 0
    #: a demand access hit a prefetched block after its data arrived
    useful: int = 0
    #: a demand access hit a prefetched block before arrival (partial stall)
    late: int = 0
    #: prefetched block evicted (or never touched) without a demand hit
    wasted: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of non-redundant prefetches that served a demand access."""
        used = self.useful + self.late
        total = used + self.wasted
        return used / total if total else 0.0


class MemoryHierarchy:
    """L1 + L2 + DRAM with LRU fill, demand misses and software prefetch."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1 = Cache(config.l1, "L1")
        self.l2 = Cache(config.l2, "L2")
        self._block_shift = config.block_bytes.bit_length() - 1
        #: block -> cycle at which its in-flight prefetch completes
        self._inflight: dict[int, int] = {}
        #: blocks brought in by prefetch and not yet used by a demand access
        self._prefetched_unused: set[int] = set()
        self.prefetch = PrefetchStats()
        self.demand_accesses = 0

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self._block_shift

    def access(self, addr: int, now: int) -> int:
        """Perform a demand access at cycle ``now``; return stall cycles."""
        self.demand_accesses += 1
        block = addr >> self._block_shift
        stall = 0
        inflight = self._inflight
        if block in inflight:
            ready = inflight.pop(block)
            if ready > now:
                stall = ready - now
                self.prefetch.late += 1
                self._prefetched_unused.discard(block)
            # on-time arrivals are counted below when the L1 lookup hits
        if self.l1.lookup(block):
            if block in self._prefetched_unused:
                self._prefetched_unused.discard(block)
                self.prefetch.useful += 1
            return stall
        if self.l2.lookup(block):
            stall += self.config.l2_latency
            if block in self._prefetched_unused:
                self._prefetched_unused.discard(block)
                self.prefetch.useful += 1
        else:
            stall += self.config.memory_latency
            self._install_l2(block)
        self._install_l1(block)
        return stall

    def issue_prefetch(self, addr: int, now: int) -> None:
        """Issue a ``prefetcht0``-style prefetch for the block of ``addr``.

        The block is installed in both cache levels right away (it occupies a
        frame and can evict useful data — pollution) and becomes *ready* after
        the fetch latency; demand accesses before then pay the residual.
        """
        self.prefetch.issued += 1
        block = addr >> self._block_shift
        if self.l1.contains(block) or block in self._inflight:
            self.prefetch.redundant += 1
            return
        if self.l2.contains(block):
            # L2-resident: promote to L1 quickly.
            self._inflight[block] = now + self.config.l2_latency
        else:
            self._inflight[block] = now + self.config.memory_latency
            self._install_l2(block)
        self._install_l1(block)
        self._prefetched_unused.add(block)

    def _install_l1(self, block: int) -> None:
        victim = self.l1.install(block)
        if victim is not None:
            self._account_eviction(victim, l1_only=True)

    def _install_l2(self, block: int) -> None:
        victim = self.l2.install(block)
        if victim is not None:
            # Model inclusion: an L2 eviction also removes the L1 copy.
            self.l1.invalidate(victim)
            self._account_eviction(victim, l1_only=False)

    def _account_eviction(self, victim: int, l1_only: bool) -> None:
        if victim in self._prefetched_unused:
            # A prefetched block that falls out of L2 (or out of L1 while
            # absent from L2) without being used was pure pollution.
            if not l1_only or not self.l2.contains(victim):
                self._prefetched_unused.discard(victim)
                self._inflight.pop(victim, None)
                self.prefetch.wasted += 1

    def finalize(self) -> None:
        """Classify still-unused prefetched blocks as wasted (end of run)."""
        self.prefetch.wasted += len(self._prefetched_unused)
        self._prefetched_unused.clear()
        self._inflight.clear()

    def flush(self) -> None:
        """Empty both cache levels and forget in-flight prefetches."""
        self.l1.flush()
        self.l2.flush()
        self._inflight.clear()
        self._prefetched_unused.clear()

    @property
    def l1_miss_rate(self) -> float:
        """L1 miss rate over all demand accesses."""
        return self.l1.misses / self.l1.accesses if self.l1.accesses else 0.0
