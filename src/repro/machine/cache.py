"""Set-associative cache with LRU replacement.

The cache operates on *block numbers* (``address >> log2(block_bytes)``); the
memory hierarchy translates byte addresses before calling in.  Each set is an
ordered list of tags, most-recently-used last, so an LRU eviction pops from
the front.  Sets are small (4- or 8-way), so a list scan is both simple and
fast.
"""

from __future__ import annotations

from repro.machine.config import CacheGeometry


class Cache:
    """One level of set-associative, LRU, block-granular cache."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._set_mask = geometry.num_sets - 1
        self._sets: list[list[int]] = [[] for _ in range(geometry.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, block: int) -> bool:
        """Look up ``block``; update LRU order and hit/miss counters.

        Returns True on a hit.  The block is *not* installed on a miss; call
        :meth:`install` for that (the hierarchy decides fill policy).
        """
        way = self._sets[block & self._set_mask]
        if block in way:
            way.remove(block)
            way.append(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Non-destructive membership probe (no LRU update, no counters)."""
        return block in self._sets[block & self._set_mask]

    def install(self, block: int) -> int | None:
        """Install ``block`` as most-recently-used; return the evicted block.

        Returns None when no eviction was needed or the block was already
        present (in which case it is promoted to MRU).
        """
        way = self._sets[block & self._set_mask]
        if block in way:
            way.remove(block)
            way.append(block)
            return None
        victim: int | None = None
        if len(way) >= self.geometry.associativity:
            victim = way.pop(0)
            self.evictions += 1
        way.append(block)
        return victim

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; return whether it was present."""
        way = self._sets[block & self._set_mask]
        if block in way:
            way.remove(block)
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (counters are preserved)."""
        for way in self._sets:
            way.clear()

    def resident_blocks(self) -> set[int]:
        """Set of all blocks currently resident (for tests/inspection)."""
        resident: set[int] = set()
        for way in self._sets:
            resident.update(way)
        return resident

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.geometry.size_bytes}B/"
            f"{self.geometry.associativity}way, hits={self.hits}, misses={self.misses})"
        )
