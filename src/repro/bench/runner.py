"""Experiment runner: executes workloads at the paper's measurement levels.

The levels form the ladder both evaluation figures climb:

==========  =================================================================
``orig``    unmodified binary (the normalization baseline)
``base``    bursty-tracing checks only, (virtually) no tracing — Figure 11
            "Base" (huge ``nCheck0``, ``nInstr0 = 1``, no listener)
``prof``    temporal data-reference profiling at the configured sampling
            rate, no analysis — Figure 11 "Prof"
``hds``     profiling + online hot-data-stream analysis — Figure 11 "Hds"
``nopref``  full pipeline incl. DFSM prefix matching, but no prefetches —
            Figure 12 "No-pref"
``seq``     prefetch sequentially-following blocks — Figure 12 "Seq-pref"
``dyn``     prefetch the hot data stream tails — Figure 12 "Dyn-pref"
==========  =================================================================

Every level rebuilds the workload from scratch (runs mutate simulated
memory) and returns a :class:`RunResult` carrying the cycle count, cache and
prefetch statistics, and the optimizer's per-cycle characterization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import OptimizerConfig
from repro.core.optimizer import DynamicPrefetcher
from repro.core.stats import OptimizerSummary
from repro.errors import ConfigError
from repro.interp.interpreter import ExecStats, Interpreter
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.machine.hierarchy import MemoryHierarchy
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.session import TelemetrySession
from repro.vulcan.static_edit import instrument_program
from repro.workloads import presets
from repro.workloads.base import BuiltWorkload

LEVELS = ("orig", "base", "prof", "hds", "nopref", "seq", "dyn", "static", "stride", "markov")
#: levels that attach the full online optimizer
_OPTIMIZED_LEVELS = ("prof", "hds", "nopref", "seq", "dyn", "static")
#: hardware-prefetcher baselines running on the unmodified binary
_HW_LEVELS = ("stride", "markov")


@dataclass
class RunResult:
    """Outcome of one (workload, level) execution."""

    workload: str
    level: str
    stats: ExecStats
    hierarchy: MemoryHierarchy
    summary: Optional[OptimizerSummary]
    #: run-level metrics registry, always populated (exact, reconciled from
    #: the simulation counters at finalize time)
    metrics: Optional[MetricsRegistry] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def overhead_vs(self, baseline: "RunResult") -> float:
        """Percent overhead relative to ``baseline`` (negative = speedup)."""
        return 100.0 * (self.cycles - baseline.cycles) / baseline.cycles


def configure_level(level: str, opt: OptimizerConfig) -> OptimizerConfig:
    """Derive the optimizer configuration implementing ``level``."""
    if level == "prof":
        return replace(opt, analyze=False, inject=False)
    if level == "hds":
        return replace(opt, analyze=True, inject=False)
    if level == "nopref":
        return replace(opt, analyze=True, inject=True, mode="nopref")
    if level == "seq":
        return replace(opt, analyze=True, inject=True, mode="seq")
    if level in ("dyn", "static"):
        return replace(opt, analyze=True, inject=True, mode="dyn")
    raise ConfigError(f"level {level!r} does not use an optimizer config")


def run_workload(
    workload: BuiltWorkload,
    level: str,
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> RunResult:
    """Execute an already-built workload at one measurement level.

    ``telemetry`` attaches an existing session (event sinks and all); without
    one, a metrics-only session is created so the returned result still
    carries an exact metrics registry.  Telemetry never alters simulated
    cycle counts.
    """
    if level not in LEVELS:
        raise ConfigError(f"unknown level {level!r}; known: {LEVELS}")
    opt = opt if opt is not None else OptimizerConfig()
    session = telemetry if telemetry is not None else TelemetrySession()
    # Open the run (and its tracing span) before any component is built so
    # the optimizer's epoch spans nest under the run span.
    if not session.context:
        session.begin_run(workload.name, level)
    program = workload.program
    summary: Optional[OptimizerSummary] = None
    if level == "orig":
        interp = Interpreter(program, workload.memory, machine)
        session.wire(interp)
    elif level in _HW_LEVELS:
        from repro.core.hwpref import MarkovPrefetcher, StridePrefetcher

        interp = Interpreter(program, workload.memory, machine)
        session.wire(interp)
        interp.hw_prefetcher = StridePrefetcher() if level == "stride" else MarkovPrefetcher()
    else:
        program, _report = instrument_program(program)
        interp = Interpreter(program, workload.memory, machine)
        session.wire(interp)
        if level == "base":
            # Checks execute, instrumented code (virtually) never does.
            interp.set_counters(1 << 40, 1)
        elif level == "static":
            from repro.core.static_pref import StaticPrefetcher

            optimizer = StaticPrefetcher(program, interp, machine, configure_level(level, opt))
            summary = optimizer.summary
        else:
            optimizer = DynamicPrefetcher(program, interp, machine, configure_level(level, opt))
            summary = optimizer.summary
    stats = interp.run(workload.args)
    interp.hierarchy.finalize(now=stats.cycles)
    session.finalize_run(stats, interp.hierarchy, summary)
    return RunResult(
        workload=workload.name,
        level=level,
        stats=stats,
        hierarchy=interp.hierarchy,
        summary=summary,
        metrics=session.registry,
    )


def run_level(
    name: str,
    level: str,
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    passes: Optional[int] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> RunResult:
    """Build the named preset workload and execute it at ``level``."""
    return run_workload(presets.build(name, passes=passes), level, machine, opt, telemetry)
