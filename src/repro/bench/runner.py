"""Compatibility facade over the experiment engine.

The run orchestration that used to live here — the measurement-level ladder,
its if/elif dispatch and the :class:`RunResult` container — moved into
:mod:`repro.engine` (a declarative :class:`~repro.engine.levels.LevelSpec`
registry, a serializable result, a content-addressed cache and a parallel
executor).  This module keeps the historical entry points with unchanged
signatures:

- :data:`LEVELS` — the registered measurement levels, ladder order;
- :func:`configure_level` — level -> optimizer-config derivation;
- :class:`RunResult` — now :class:`repro.engine.result.RunResult`;
- :func:`run_workload` / :func:`run_level` — one uncached, in-process
  execution (exactly the old behaviour).

Cache-aware and parallel execution live in :func:`repro.engine.run_spec`
and :func:`repro.engine.execute_plan`; new levels register through
:func:`repro.engine.register_level`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import OptimizerConfig
from repro.engine.levels import LEVELS, configure_level, execute_workload
from repro.engine.result import RunResult
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.telemetry.session import TelemetrySession
from repro.workloads import presets
from repro.workloads.base import BuiltWorkload

__all__ = ["LEVELS", "RunResult", "configure_level", "run_level", "run_workload"]


def run_workload(
    workload: BuiltWorkload,
    level: str,
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> RunResult:
    """Execute an already-built workload at one measurement level.

    ``telemetry`` attaches an existing session (event sinks and all); without
    one, a metrics-only session is created so the returned result still
    carries an exact metrics registry.  Telemetry never alters simulated
    cycle counts.
    """
    return execute_workload(workload, level, machine, opt, telemetry)


def run_level(
    name: str,
    level: str,
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    passes: Optional[int] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> RunResult:
    """Build the named preset workload and execute it at ``level``."""
    return run_workload(presets.build(name, passes=passes), level, machine, opt, telemetry)
