"""Command-line entry point: ``repro-bench <artifact>``.

Regenerates the paper's figures and tables as text::

    repro-bench figure4            # Sequitur grammar example
    repro-bench table1             # analysis worked example
    repro-bench figure8            # prefix-match DFSM example
    repro-bench figure11           # profiling/analysis overheads
    repro-bench figure12           # prefetching impact
    repro-bench table2             # per-cycle characterization
    repro-bench ablation-headlen   # prefix length 1/2/3
    repro-bench ablation-hwpref    # stride/Markov baselines
    repro-bench ablation-watchdog  # prefetch watchdog on a phase-shift workload
    repro-bench tables             # the deterministic worked examples (figure4,
                                   # table1, figure8) — the bench_tables.txt source
    repro-bench all

Verification: ``repro-bench verify`` runs the :mod:`repro.oracle` suite —
differential fuzzing of every production component against its reference
model, the metamorphic whole-run invariants and the golden trace corpus.
``--seed``/``--runs`` control the randomized sections; ``--update-golden``
re-records ``tests/golden/`` instead of diffing against it.  Exits non-zero
on any disagreement.

``--scale 0.5`` shrinks every workload's pass count for quick smoke runs;
``--workloads vpr,mcf`` restricts the set.

Resilience: ``--watchdog`` arms the prefetch watchdog (per-stream
deoptimization, :mod:`repro.resilience`) for every optimized run;
``--fault-seed N`` injects deterministic faults from that seed — runs must
complete with the failures contained and reported in telemetry.

Telemetry: ``--telemetry run.jsonl`` streams every simulated run's event log
(``RunBegin``/``RunEnd`` delimit runs) and ``--metrics run.json`` writes one
metrics snapshot per (workload, level), keyed ``workload/level`` and carrying
the serialized optimizer summary.  Both files round-trip through
:mod:`repro.telemetry.export`.

Tracing (:mod:`repro.tracing`): ``repro-bench trace --out trace.json`` runs
every workload at ``--level`` (default ``dyn``) with span tracing enabled and
writes one Chrome trace-event JSON loadable in ``chrome://tracing`` or
`ui.perfetto.dev <https://ui.perfetto.dev>`_ — one process per run, threads
for the run/epoch/analysis span tree, profiling bursts and instant events.
``repro-bench explain`` prints each workload's cycle-attribution breakdown
(the Figure 11 decomposition, conservation-checked) and a per-stream prefetch
scorecard built from the lifecycle ledger; ``--stream s3`` (with a single
``--workloads`` entry) zooms into one stream's fate histogram, timeliness
distribution and watchdog verdicts.  ``--against orig`` diffs the
attribution tables of two levels instead — both sides replay from the result
cache when warm.  ``--by-proc`` adds the per-procedure split of the same
seven categories (sums are conservation-checked against the totals).

Streaming observability (:mod:`repro.obs`): ``--stream DIR`` on ``trace``
(or any figures-path artifact combined with ``--telemetry``/``--metrics``)
exports events incrementally as sealed, size-bounded, digest-tagged JSONL
chunks plus a streaming Perfetto protobuf sidecar — bounded memory, and a
SIGKILLed run leaves a valid trace prefix.  ``trace --from PATH`` and
``explain --from PATH`` accept a chunk directory or a monolithic trace JSON
interchangeably: ``trace --from`` merges to ``--out``; ``explain --from``
renders the embedded run summaries offline.  ``repro-bench status
[run-dir]`` renders a supervised run's live progress file (per-task state,
instruction/cycle counters, hit/accuracy EWMAs, ETA) whether the run is
alive, finished, or dead.  ``--flush-every N`` bounds the JSONL sink's
buffer.

Experiment engine (:mod:`repro.engine`): every simulated run is described by
a content-fingerprinted :class:`~repro.engine.spec.RunSpec` and memoized in
the on-disk result cache (default ``.repro-cache/``; override with
``--cache-dir`` or ``$REPRO_CACHE_DIR``, disable with ``--no-cache``).  A
warm rerun replays bit-identical results instead of simulating; the session
summary (hits/misses/stored) goes to **stderr** so stdout stays byte-for-byte
comparable between cold and warm runs.  ``--jobs N`` fans uncached runs out
over N worker processes — output is deterministic and identical to serial.
``repro-bench cache`` prints the store's stats (including a corrupt-entry
audit); ``repro-bench cache --clear`` empties it; ``repro-bench cache gc
--max-age-days D --max-size-mb M`` bounds it (old entries first, then
oldest-until-it-fits), and ``--dry-run`` reports the eviction set without
deleting anything.

Durability (:mod:`repro.durability`): ``--resume`` replays the write-ahead
journal of an interrupted ``figures``/``tables``/``verify`` run and restarts
only the unfinished tasks, so a SIGKILLed long run picks up where it died —
with output byte-identical to a straight-through run.  ``--task-timeout S``
bounds each task's wall-clock (stalled or crashed workers are SIGKILLed and
retried with backoff, resuming their own checkpoints); ``--checkpoint-every
N`` sets the checkpoint cadence in simulated instructions; ``--chaos-seed
SEED`` arms the deterministic chaos harness (worker kills, stalls, torn
checkpoints, corrupt cache entries, flipped journal bytes) — the run must
still produce byte-identical output.  Any of these flags routes execution
through the supervised executor; journals and checkpoints live under
``<cache root>/journal/``.

Tenancy (:mod:`repro.tenancy`): ``repro-bench tenancy --tenants
vpr:dyn,phaseshift:dyn`` interleaves several workloads on one shared
hierarchy (``--quantum`` instructions per round-robin slice, ``--sharing
shared|private-l1``) and prints the per-tenant scorecard plus the
cross-tenant pollution matrix, exact and reconciled.  ``repro-bench
ablation-tenancy`` runs the shared-L2 ablation: vpr at nopref/dyn/
dyn+watchdog against the phaseshift thrasher.  ``--watchdog`` and
``--fault-seed`` apply to every tenant; co-run results memoize in the same
result cache under the plan fingerprint.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.bench import figures
from repro.bench.figures import ResultCache
from repro.bench.reporting import Ratio, format_table
from repro.core.config import OptimizerConfig
from repro.engine.cache import ResultStore
from repro.fastpath import set_fastpath
from repro.resilience import FaultPlan, WatchdogConfig
from repro.telemetry.session import TelemetryRecorder
from repro.workloads import presets
from repro.workloads.phaseshift import PhaseShiftParams


def _print_figure4() -> None:
    print("Figure 4: Sequitur grammar for w=" + figures.EXAMPLE_STRING)
    print(figures.figure4_grammar())


def _print_table1() -> None:
    rows = figures.table1_rows()
    print(
        format_table(
            ["rule", "word", "length", "index", "uses", "coldUses", "heat", "hot"],
            [[r[k] for k in ("rule", "word", "length", "index", "uses", "coldUses", "heat", "hot")] for r in rows],
            title="Table 1: hot data stream analysis worked example (H=8, len 2..7)",
        )
    )


def _print_figure8() -> None:
    dfsm = figures.figure8_dfsm()
    print(f"Figure 8: prefix-match DFSM for v={figures.EXAMPLE_STREAMS[0]}, "
          f"w={figures.EXAMPLE_STREAMS[1]} (headLen=3)")
    print(f"states={dfsm.num_states} transitions={dfsm.num_transitions}")
    for state in range(dfsm.num_states):
        completions = dfsm.completions.get(state, ())
        suffix = f"  completes {completions}" if completions else ""
        print(f"  {state}: {dfsm.describe(state)}{suffix}")


def _print_figure11(cache: ResultCache, names: Sequence[str]) -> None:
    rows = figures.figure11_rows(cache, names)
    print(
        format_table(
            ["benchmark", "Base %", "Prof %", "Hds %"],
            [[r["benchmark"], r["base_pct"], r["prof_pct"], r["hds_pct"]] for r in rows],
            title="Figure 11: overhead of online profiling and analysis",
        )
    )


def _print_figure12(cache: ResultCache, names: Sequence[str]) -> None:
    rows = figures.figure12_rows(cache, names)
    print(
        format_table(
            ["benchmark", "No-pref %", "Seq-pref %", "Dyn-pref %"],
            [[r["benchmark"], r["nopref_pct"], r["seqpref_pct"], r["dynpref_pct"]] for r in rows],
            title="Figure 12: performance impact of dynamic prefetching "
            "(negative = speedup)",
        )
    )
    quality = figures.figure12_quality_rows(cache, names, levels=("seq", "dyn"))
    print(
        format_table(
            ["benchmark", "level", "issued", "accuracy", "timeliness", "pollution"],
            [
                [
                    r["benchmark"],
                    r["level"],
                    r["issued"],
                    Ratio(r["accuracy"]),
                    Ratio(r["timeliness"]),
                    Ratio(r["pollution"]),
                ]
                for r in quality
            ],
            title="Figure 12 companion: prefetch quality per level "
            "(accuracy / timeliness / pollution)",
        )
    )


def _print_table2(cache: ResultCache, names: Sequence[str]) -> None:
    rows = figures.table2_rows(cache, names)
    print(
        format_table(
            [
                "benchmark",
                "#opt cycles",
                "#traced refs",
                "#hds",
                "DFSM states",
                "DFSM trans",
                "checks",
                "#procs",
            ],
            [
                [
                    r["benchmark"],
                    r["opt_cycles"],
                    r["traced_refs_per_cycle"],
                    r["hds_per_cycle"],
                    r["dfsm_states"],
                    r["dfsm_transitions"],
                    r["dfsm_checks"],
                    r["procs_modified"],
                ]
                for r in rows
            ],
            title="Table 2: detailed dynamic prefetching characterization (per-cycle averages)",
        )
    )


def _print_ablation_headlen(names: Sequence[str], cache: ResultCache) -> None:
    for name in names:
        rows = figures.ablation_headlen(
            name,
            passes=cache.passes_for(name),
            store=cache.store,
            jobs=cache.jobs,
            durability=cache.durability,
        )
        print(
            format_table(
                ["headLen", "Dyn-pref %", "accuracy", "issued"],
                [[r["head_len"], r["dynpref_pct"], r["prefetch_accuracy"], r["prefetches_issued"]] for r in rows],
                title=f"Ablation (Section 4.3): prefix-match length, {name}",
            )
        )


def _print_ablation_watchdog(cache: ResultCache, fault_seed: Optional[int]) -> None:
    scale = cache.passes_scale
    passes = None if scale == 1.0 else max(2, int(PhaseShiftParams().passes * scale))
    rows = figures.ablation_watchdog(
        passes=passes,
        fault_seed=fault_seed,
        store=cache.store,
        jobs=cache.jobs,
        durability=cache.durability,
    )
    print(
        format_table(
            [
                "variant",
                "cycles",
                "vs no-pref %",
                "#opt",
                "deopts",
                "wakes",
                "errors",
                "faults",
                "issued",
                "useful",
                "wasted",
            ],
            [
                [
                    r["variant"],
                    r["cycles"],
                    r["vs_nopref_pct"],
                    r["opt_cycles"],
                    r["deopts"],
                    r["early_wakes"],
                    r["errors"],
                    r["faults"],
                    r["issued"],
                    r["useful"],
                    r["wasted"],
                ]
                for r in rows
            ],
            title="Ablation (extension): prefetch watchdog under phase shifts",
        )
    )


def _print_ablation_hwpref(names: Sequence[str], cache: ResultCache) -> None:
    for name in names:
        rows = figures.ablation_hwpref(
            name,
            passes=cache.passes_for(name),
            store=cache.store,
            jobs=cache.jobs,
            durability=cache.durability,
        )
        print(
            format_table(
                ["scheme", "overhead %", "accuracy", "useful", "wasted"],
                [[r["scheme"], r["overhead_pct"], r["prefetch_accuracy"], r["useful"], r["wasted"]] for r in rows],
                title=f"Ablation (Section 5.1): hardware prefetcher baselines, {name}",
            )
        )


def _print_tables() -> None:
    """The deterministic worked examples, in bench_tables.txt order."""
    _print_figure4()
    print()
    _print_table1()
    print()
    _print_figure8()


class _SummaryCollector:
    """Silent sink that keeps the per-run summary docs the engine publishes.

    Attached next to the real sinks so the monolithic trace carries exactly
    the documents a chunk manifest would — the interchangeability contract
    of ``trace --from`` / ``explain --from``.
    """

    def __init__(self) -> None:
        self.docs: list[dict] = []

    def handle(self, event) -> None:
        pass

    def note_run_summary(self, doc: dict) -> None:
        self.docs.append(doc)


def _trace_from(args, parser) -> int:
    """``trace --from``: merge an existing artifact, simulating nothing.

    Accepts a chunk directory (the valid prefix loads; torn suffixes are
    reported and dropped) or a monolithic Chrome trace JSON (validated and
    rewritten), producing one monolithic trace at ``--out``.
    """
    import json

    from repro.errors import ConfigError
    from repro.obs.chunks import is_chunk_dir, load_chunk_events
    from repro.obs.stream import split_runs
    from repro.telemetry.export import load_chrome_trace, write_chrome_trace

    path = args.from_path
    try:
        if is_chunk_dir(path):
            events, load = load_chunk_events(path)
            for note in load.notes:
                print(f"  dropped: {note}", file=sys.stderr)
            runs = split_runs(events)
            entries = write_chrome_trace(runs, args.out, summaries=load.summaries)
            state = "complete" if load.complete else f"prefix ({load.dropped} entries dropped)"
            print(
                f"merged {load.chunks} chunks / {len(load.records)} records "
                f"[{state}] from {path} -> {args.out} ({entries} entries)"
            )
        else:
            document = load_chrome_trace(path)
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
                fh.write("\n")
            print(f"validated {path} -> {args.out} ({len(document['traceEvents'])} entries)")
    except (ConfigError, OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read {path}: {exc}")
    return 0


def _run_trace(args, names: Sequence[str], cache: ResultCache, parser) -> int:
    from repro.bench.runner import run_level
    from repro.errors import ConfigError
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.session import TelemetrySession
    from repro.telemetry.sinks import ListSink

    if args.from_path is not None:
        return _trace_from(args, parser)

    stream_sink = None
    if args.stream is not None:
        from repro.obs.stream import StreamingTraceSink

        try:
            stream_sink = StreamingTraceSink(args.stream)
        except ConfigError as exc:
            parser.error(str(exc))
    collector = _SummaryCollector()
    runs = []
    try:
        for name in names:
            sink = ListSink()
            sinks = [sink, collector] + ([stream_sink] if stream_sink is not None else [])
            session = TelemetrySession(
                sinks=sinks,
                miss_sample_every=args.miss_sample,
                prefetch_sample_every=args.prefetch_sample,
                tracing=True,
                proc_attribution=args.by_proc or stream_sink is not None,
            )
            result = run_level(
                name, args.level, opt=cache.opt, passes=cache.passes_for(name), telemetry=session
            )
            runs.append((f"{name}/{args.level}", sink.events))
            print(f"  traced {name}/{args.level}: {result.cycles} cycles, {len(sink.events)} events")
    finally:
        if stream_sink is not None:
            stream_sink.close()
    entries = write_chrome_trace(runs, args.out, summaries=collector.docs)
    print(
        f"chrome trace written to {args.out} ({entries} entries); "
        "open in chrome://tracing or ui.perfetto.dev"
    )
    if stream_sink is not None:
        print(
            f"streamed chunks + perfetto sidecar in {args.stream} "
            "(repro-bench trace --from <dir> merges them)"
        )
    return 0


def _run_explain(args, names: Sequence[str], cache: ResultCache, parser) -> int:
    from repro.errors import ConfigError
    from repro.tracing.explain import (
        diff_levels,
        explain_level,
        offline_explanations,
        render_explanation,
        render_level_diff,
    )

    if args.from_path is not None:
        if args.stream is not None or args.against is not None:
            parser.error("--from renders stored summaries; it cannot combine "
                         "with --stream or --against")
        try:
            explanations = offline_explanations(args.from_path)
        except ConfigError as exc:
            parser.error(str(exc))
        for exp in explanations:
            print(render_explanation(exp))
            print()
        return 0
    if args.stream is not None and len(names) != 1:
        parser.error("--stream needs a single workload (use --workloads <name>)")
    if args.against is not None:
        if args.stream is not None:
            parser.error("--against diffs whole levels; it cannot combine with --stream")
        for name in names:
            diff = diff_levels(
                name,
                args.level,
                against=args.against,
                opt=cache.opt,
                passes=cache.passes_for(name),
                store=cache.store,
            )
            print(render_level_diff(diff))
            print()
        return 0
    status = 0
    for name in names:
        exp = explain_level(
            name,
            args.level,
            opt=cache.opt,
            passes=cache.passes_for(name),
            by_proc=args.by_proc,
        )
        print(render_explanation(exp, stream=args.stream))
        print()
        if exp.mismatches:
            status = 1
    return status


def _durability_policy(args):
    """Build the DurabilityPolicy the flags ask for, or None for the plain path.

    Any durability flag engages the supervised executor; absent all of them
    the engine keeps its zero-overhead direct path.  The stall deadline
    tracks the task timeout but never exceeds 10s — a live worker heartbeats
    every quarter second, so silence is a stall long before it is a timeout.
    """
    engaged = (
        args.resume
        or args.chaos_seed is not None
        or args.task_timeout is not None
        or args.checkpoint_every is not None
    )
    if not engaged:
        return None
    from repro.durability import ChaosPlan, DurabilityPolicy, SupervisorConfig
    from repro.durability.runner import DEFAULT_CHECKPOINT_EVERY

    task_timeout = args.task_timeout if args.task_timeout is not None else 600.0
    return DurabilityPolicy(
        resume=args.resume,
        checkpoint_every=(
            args.checkpoint_every
            if args.checkpoint_every is not None
            else DEFAULT_CHECKPOINT_EVERY
        ),
        supervisor=SupervisorConfig(
            task_timeout=task_timeout,
            stall_timeout=min(10.0, task_timeout),
        ),
        chaos=ChaosPlan(seed=args.chaos_seed) if args.chaos_seed is not None else None,
    )


def _run_verify(args, store: Optional[ResultStore], durability=None) -> int:
    from repro.oracle import golden as golden_corpus
    from repro.oracle.verify import run_verify

    golden_dir = args.golden_dir
    if args.update_golden:
        # Recording must freeze what the simulator *does*, never a replay.
        written = golden_corpus.record_corpus(golden_dir, jobs=args.jobs, durability=durability)
        for path in written:
            print(f"recorded {path}")
        print(f"golden corpus updated ({len(written)} runs)")
        return 0
    report = run_verify(
        seed=args.seed,
        runs=args.runs,
        golden_dir=golden_dir,
        include_golden=not args.skip_golden,
        progress=lambda message: print(f"  .. {message}"),
        store=store,
        jobs=args.jobs,
        durability=durability,
    )
    print(report.format())
    _print_cache_summary(store)
    return 0 if report.ok else 1


def _run_status(args, parser) -> int:
    """``repro-bench status [run-dir]``: render a supervised run's progress.

    Works identically on a run that is still executing, one that finished,
    and one whose process died — the file's age distinguishes them.
    """
    from repro.engine.cache import default_cache_root
    from repro.errors import ConfigError
    from repro.obs.status import read_status, render_status

    run_dir = args.subcommand
    if run_dir is None:
        root = Path(args.cache_dir) if args.cache_dir else default_cache_root()
        run_dir = Path(root) / "journal"
    try:
        doc = read_status(run_dir)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render_status(doc))
    return 0


def _run_cache(args, parser) -> int:
    """``repro-bench cache``: inspect, clear or garbage-collect the store."""
    store = ResultStore(args.cache_dir)
    if args.subcommand == "gc":
        if args.max_age_days is None and args.max_size_mb is None:
            parser.error("cache gc needs --max-age-days and/or --max-size-mb")
        report = store.gc(
            max_age_days=args.max_age_days,
            max_size_mb=args.max_size_mb,
            dry_run=args.dry_run,
        )
        verb = "would evict" if args.dry_run else "evicted"
        print(
            f"result cache gc: {report['evicted']} entries {verb} "
            f"({report['bytes_freed']} bytes), "
            f"{report['entries']} entries / {report['bytes']} bytes "
            f"{'would ' if args.dry_run else ''}remain ({store.root})"
        )
        return 0
    if args.subcommand is not None:
        parser.error(f"unknown cache subcommand {args.subcommand!r} (known: gc)")
    if args.clear:
        removed = store.clear()
        print(f"result cache cleared: {removed} entries removed ({store.root})")
        return 0
    stats = store.stats()
    print(f"result cache at {stats['root']}")
    print(f"  entries {stats['entries']}")
    print(f"  bytes   {stats['bytes']}")
    print(f"  corrupt {stats['corrupt']}")
    return 0


def _parse_tenants(args, parser, opt: OptimizerConfig, scale: float):
    """``--tenants vpr:dyn,phaseshift:dyn`` -> tuple of TenantSpecs."""
    from repro.engine.levels import level_names
    from repro.tenancy import TenantSpec

    known = set(presets.names()) | {"phaseshift"}
    specs = []
    for part in args.tenants.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, level = part.partition(":")
        if not sep or not name or not level:
            parser.error(f"bad tenant {part!r}; expected workload:level")
        if name not in known:
            parser.error(f"unknown tenant workload {name!r}; known: {sorted(known)}")
        if level not in level_names():
            parser.error(f"unknown tenant level {level!r}; known: {', '.join(level_names())}")
        if scale == 1.0:
            passes = None
        elif name == "phaseshift":
            passes = max(2, int(PhaseShiftParams().passes * scale))
        else:
            passes = max(2, int(presets.params_for(name).passes * scale))
        specs.append(TenantSpec(name, level, passes=passes, opt=opt))
    if not specs:
        parser.error("--tenants needs at least one workload:level entry")
    return tuple(specs)


def _run_tenancy(args, parser, opt: OptimizerConfig, store: Optional[ResultStore]) -> int:
    """``repro-bench tenancy``: one co-run, scorecard + pollution matrix."""
    from repro.tenancy import TenantPlan, run_tenant_plan_cached
    from repro.tenancy.ablation import check_result
    from repro.tenancy.scorecard import render_scorecard

    plan = TenantPlan(
        tenants=_parse_tenants(args, parser, opt, args.scale),
        quantum=args.quantum,
        sharing=args.sharing,
    )
    result = run_tenant_plan_cached(plan, store)
    print(render_scorecard(result))
    problems = check_result(result)
    if problems:
        for problem in problems:
            print(f"RECONCILIATION FAILURE: {problem}", file=sys.stderr)
        return 1
    return 0


def _print_ablation_tenancy(cache: ResultCache) -> None:
    from repro.tenancy.ablation import ablation_tenancy, render_ablation

    scale = cache.passes_scale
    passes = None if scale == 1.0 else max(2, int(PhaseShiftParams().passes * scale))
    rows = ablation_tenancy(passes=passes, store=cache.store, jobs=cache.jobs)
    print(render_ablation(rows))


def _print_cache_summary(store: Optional[ResultStore]) -> None:
    """Session hit/miss summary on stderr (stdout stays cold/warm-identical)."""
    if store is not None and (store.hits or store.misses or store.stored):
        print(store.summary_line(), file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro-bench", description=__doc__)
    parser.add_argument(
        "artifact",
        choices=[
            "figure4",
            "table1",
            "figure8",
            "figure11",
            "figure12",
            "table2",
            "ablation-headlen",
            "ablation-hwpref",
            "ablation-watchdog",
            "ablation-tenancy",
            "tenancy",
            "tables",
            "figures",
            "trace",
            "explain",
            "status",
            "verify",
            "cache",
            "all",
        ],
    )
    parser.add_argument(
        "subcommand",
        nargs="?",
        default=None,
        help="cache: optional subcommand (gc); "
        "status: run directory (default: the result cache's journal root)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload pass-count scale")
    parser.add_argument("--workloads", default="", help="comma-separated subset of benchmarks")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run uncached simulations across N worker processes (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither replay from nor write to the result cache",
    )
    parser.add_argument(
        "--clear",
        action="store_true",
        help="cache: delete every stored result instead of printing stats",
    )
    parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="cache gc: evict entries not written in the last D days",
    )
    parser.add_argument(
        "--max-size-mb",
        type=float,
        default=None,
        metavar="M",
        help="cache gc: evict oldest entries until the store fits in M MiB",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="cache gc: report what would be evicted without deleting anything",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the write-ahead journal of an interrupted run and "
        "restart only its unfinished tasks (engages the supervised executor)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="supervised executor: SIGKILL and retry any task running/stalled "
        "past S seconds (default 600 once engaged)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="supervised executor: checkpoint each run every N simulated "
        "instructions (default 250000 once engaged)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="deterministically inject engine-level faults (worker kills, "
        "stalls, torn checkpoints, corrupt cache/journal bytes) from SEED; "
        "output must stay byte-identical",
    )
    parser.add_argument(
        "--tenants",
        default="vpr:dyn,phaseshift:dyn",
        metavar="W:L,...",
        help="tenancy: comma-separated workload:level tenant mix "
        "(default vpr:dyn,phaseshift:dyn)",
    )
    parser.add_argument(
        "--quantum",
        type=int,
        default=4096,
        metavar="N",
        help="tenancy: round-robin slice length in instructions (default 4096)",
    )
    parser.add_argument(
        "--sharing",
        choices=["shared", "private-l1"],
        default="private-l1",
        help="tenancy: cache sharing mode (default private-l1: per-tenant L1s, shared L2)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        default=None,
        help="stream every run's telemetry events to this JSONL file",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT.JSON",
        default=None,
        help="write per-run metrics snapshots (keyed workload/level) to this JSON file",
    )
    parser.add_argument(
        "--miss-sample",
        type=int,
        default=64,
        metavar="N",
        help="emit one CacheMiss event per N demand misses (default 64)",
    )
    parser.add_argument(
        "--prefetch-sample",
        type=int,
        default=32,
        metavar="N",
        help="emit one prefetch life-cycle event per N occurrences (default 32; 1 = all)",
    )
    parser.add_argument(
        "--watchdog",
        action="store_true",
        help="arm the prefetch watchdog (per-stream deoptimization) for every optimized run",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="deterministically inject optimizer faults from SEED (runs must still complete)",
    )
    parser.add_argument(
        "--out",
        metavar="TRACE.JSON",
        default="trace.json",
        help="trace: output path for the Chrome trace-event JSON (default trace.json)",
    )
    parser.add_argument(
        "--level",
        default="dyn",
        help="trace/explain: measurement level to run (default dyn)",
    )
    parser.add_argument(
        "--stream",
        metavar="ID|DIR",
        default=None,
        help="explain: zoom into one stream's scorecard (id from the summary "
        "table); trace/figures: also stream events into this directory as "
        "sealed, digest-tagged chunks with a Perfetto sidecar",
    )
    parser.add_argument(
        "--from",
        dest="from_path",
        metavar="PATH",
        default=None,
        help="trace/explain: read an existing chunk directory or monolithic "
        "trace JSON instead of simulating (trace: merge to --out; "
        "explain: render the embedded run summaries)",
    )
    parser.add_argument(
        "--by-proc",
        action="store_true",
        help="explain/trace: record per-procedure cycle attribution "
        "(explain renders the per-proc table; trace embeds it in summaries)",
    )
    parser.add_argument(
        "--flush-every",
        type=int,
        default=512,
        metavar="N",
        help="telemetry JSONL sink: flush buffered events every N records "
        "(default 512; 1 = line-buffered)",
    )
    parser.add_argument(
        "--against",
        metavar="LEVEL",
        default=None,
        help="explain: diff --level's attribution against this level (e.g. orig)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="verify: seed for the randomized differential sections (default 0)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=25,
        metavar="N",
        help="verify: generated inputs per randomized section (default 25)",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="verify: re-record the golden corpus instead of diffing against it",
    )
    parser.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help="verify: golden corpus directory (default: tests/golden of this repo)",
    )
    parser.add_argument(
        "--skip-golden",
        action="store_true",
        help="verify: run only the differential and metamorphic sections",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="execute through the compiled fastpath kernel (bit-identical; "
        "sets REPRO_FASTPATH=1 so pool workers inherit it)",
    )
    args = parser.parse_args(argv)

    if args.fast:
        # Environment, not a parameter: fingerprints must not change (the
        # kernel is bit-identical), and fork-based pool workers inherit it.
        set_fastpath(True)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be > 0")
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        parser.error("--checkpoint-every must be >= 1")
    if args.flush_every < 1:
        parser.error("--flush-every must be >= 1")
    if args.artifact == "cache":
        return _run_cache(args, parser)
    if args.artifact == "status":
        return _run_status(args, parser)
    store = None if args.no_cache else ResultStore(args.cache_dir)
    durability = _durability_policy(args)

    if args.artifact == "verify":
        return _run_verify(args, store, durability=durability)

    names = [n for n in args.workloads.split(",") if n] or presets.names()
    unknown = set(names) - set(presets.names())
    if unknown:
        parser.error(f"unknown workloads: {sorted(unknown)}")
    for path in (args.telemetry, args.metrics):
        if path:
            try:
                # Fail fast: a bad path should not surface minutes into a run.
                open(path, "a", encoding="utf-8").close()
            except OSError as exc:
                parser.error(f"cannot write {path}: {exc}")
    # For figures-path artifacts --stream is a chunk directory wired into the
    # shared recorder; trace manages its own streaming sink and explain keeps
    # the historical stream-id zoom semantics.
    figures_stream = args.stream if args.artifact not in ("trace", "explain") else None
    recorder = None
    if args.telemetry or args.metrics or figures_stream:
        from repro.errors import ConfigError

        try:
            recorder = TelemetryRecorder(
                events_path=args.telemetry,
                metrics_path=args.metrics,
                miss_sample_every=args.miss_sample,
                prefetch_sample_every=args.prefetch_sample,
                flush_every=args.flush_every,
                stream_dir=figures_stream,
            )
        except ConfigError as exc:
            parser.error(str(exc))
    opt = OptimizerConfig()
    if args.watchdog:
        opt = replace(opt, watchdog=WatchdogConfig())
    if args.fault_seed is not None:
        opt = replace(opt, faults=FaultPlan(seed=args.fault_seed))
    cache = ResultCache(
        opt=opt,
        passes_scale=args.scale,
        recorder=recorder,
        store=store,
        jobs=args.jobs,
        durability=durability,
    )

    if args.artifact == "tenancy":
        status = _run_tenancy(args, parser, opt, store)
        _print_cache_summary(store)
        return status
    if args.artifact == "ablation-tenancy":
        _print_ablation_tenancy(cache)
        _print_cache_summary(store)
        return 0

    if args.artifact in ("trace", "explain"):
        from repro.bench.runner import LEVELS

        for level in (args.level, args.against):
            if level is not None and level not in LEVELS:
                parser.error(f"unknown level {level!r}; known: {', '.join(LEVELS)}")
        if args.artifact == "trace":
            return _run_trace(args, names, cache, parser)
        status = _run_explain(args, names, cache, parser)
        _print_cache_summary(store)
        return status

    if args.artifact == "tables":
        _print_tables()
        return 0
    if args.artifact in ("figure4", "all"):
        _print_figure4()
    if args.artifact in ("table1", "all"):
        _print_table1()
    if args.artifact in ("figure8", "all"):
        _print_figure8()
    if args.artifact in ("figure11", "figures", "all"):
        _print_figure11(cache, names)
    if args.artifact in ("figure12", "figures", "all"):
        _print_figure12(cache, names)
    if args.artifact in ("table2", "figures", "all"):
        _print_table2(cache, names)
    if args.artifact in ("ablation-headlen", "all"):
        _print_ablation_headlen(names, cache)
    if args.artifact in ("ablation-hwpref", "all"):
        _print_ablation_hwpref(names, cache)
    if args.artifact in ("ablation-watchdog", "all"):
        _print_ablation_watchdog(cache, args.fault_seed)
    if recorder is not None:
        recorder.close()
        if args.telemetry:
            print(f"telemetry events written to {args.telemetry}")
        if args.metrics:
            print(f"metrics snapshots written to {args.metrics}")
        if figures_stream:
            print(
                f"streamed chunks + perfetto sidecar in {figures_stream} "
                "(repro-bench trace --from <dir> merges them)"
            )
    _print_cache_summary(store)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
