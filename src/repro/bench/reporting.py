"""Plain-text table rendering for experiment output.

Every figure/table regenerator returns rows of Python values; this module
turns them into aligned monospace tables so bench runs read like the paper's
artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Ratio:
    """A 0..1 quality value (accuracy/timeliness/pollution).

    Bare floats render as signed overhead percentages (``+3.1``), which is
    wrong for ratios; wrapping a cell in :class:`Ratio` formats it ``0.853``.
    """

    value: float


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, Ratio):
        return f"{value.value:.3f}"
    if isinstance(value, float):
        return f"{value:+.1f}" if value < 1000 else f"{value:.0f}"
    return str(value)


def format_percent_row(name: str, values: dict[str, float]) -> str:
    """One-line summary, e.g. ``vpr: base=+3.0% ... dyn=-14.5%``."""
    parts = " ".join(f"{k}={v:+.1f}%" for k, v in values.items())
    return f"{name}: {parts}"
