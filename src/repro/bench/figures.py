"""Regeneration of every figure and table in the paper's evaluation.

Each function reproduces one artifact (see DESIGN.md's experiment index):

========================  ====================================================
:func:`figure4_grammar`   Figure 4 — Sequitur grammar for ``abaabcabcabcabc``
:func:`table1_rows`       Table 1 / Figure 6 — hot-data-stream analysis
                          worked example
:func:`figure8_dfsm`      Figure 8 — prefix-match DFSM for ``abacadae`` and
                          ``bbghij``
:func:`figure11_rows`     Figure 11 — profiling/analysis overhead bars
:func:`figure12_rows`     Figure 12 — No-pref / Seq-pref / Dyn-pref impact
:func:`table2_rows`       Table 2 — per-cycle characterization
:func:`ablation_headlen`  Section 4.3 prose — prefix-match length 1/2/3
:func:`ablation_hwpref`   Section 4.3/5.1 prose — stride & Markov baselines
:func:`ablation_watchdog` Extension — prefetch watchdog vs. unguarded dyn on
                          an adversarial phase-shift workload
========================  ====================================================

Workload executions are memoized in a :class:`ResultCache`, which sits on
the experiment engine (:mod:`repro.engine`): every execution is described by
a :class:`~repro.engine.spec.RunSpec`, replayed from the content-addressed
:class:`~repro.engine.cache.ResultStore` when one is attached, and batched
through :func:`~repro.engine.executor.execute_plan` (``jobs > 1`` fans the
simulations out over a process pool) by :meth:`ResultCache.warm`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.analysis.hotstreams import AnalysisConfig, analyze_grammar
from repro.analysis.stream import HotDataStream
from repro.core.config import OptimizerConfig
from repro.dfsm.build import build_dfsm
from repro.dfsm.machine import PrefixDFSM
from repro.engine.cache import ResultStore
from repro.engine.executor import execute_plan, run_spec
from repro.engine.result import RunResult
from repro.engine.spec import RunPlan, RunSpec
from repro.machine.config import CacheGeometry, MachineConfig, PAPER_MACHINE
from repro.resilience import FaultPlan, WatchdogConfig
from repro.sequitur.sequitur import Sequitur
from repro.telemetry.session import TelemetryRecorder
from repro.workloads import presets
from repro.workloads.phaseshift import PhaseShiftParams

#: The paper's worked-example string (Figure 4/6, Table 1).
EXAMPLE_STRING = "abaabcabcabcabc"
#: The paper's example streams for the DFSM figure (Figure 8).
EXAMPLE_STREAMS = ("abacadae", "bbghij")


# --------------------------------------------------------------- small repros


def example_grammar() -> tuple[Sequitur, dict[int, str]]:
    """Sequitur grammar for the paper's example string, plus terminal names."""
    alphabet = sorted(set(EXAMPLE_STRING))
    encode = {ch: i for i, ch in enumerate(alphabet)}
    seq = Sequitur()
    seq.extend(encode[ch] for ch in EXAMPLE_STRING)
    return seq, {i: ch for ch, i in encode.items()}


def figure4_grammar() -> str:
    """The Figure 4 grammar as text (expected: S -> A a B B etc.)."""
    seq, names = example_grammar()
    return seq.to_text(names)


def table1_rows() -> list[dict[str, object]]:
    """Table 1's computed values, one dict per non-terminal.

    Uses the example's parameters: H = 8, minLen = 2, maxLen = 7.
    """
    seq, names = example_grammar()
    config = AnalysisConfig(heat_threshold=8, min_length=2, max_length=7)
    facts = analyze_grammar(seq, config)
    rows = []
    for fact in sorted(facts.values(), key=lambda f: f.index):
        word = "".join(names[t] for t in seq.expand(seq.rules[fact.rule_id]))
        rows.append(
            {
                "rule": "S" if fact.rule_id == seq.start.id else f"R{fact.rule_id}",
                "word": word,
                "length": fact.length,
                "index": fact.index,
                "uses": fact.uses,
                "coldUses": fact.cold_uses,
                "heat": fact.heat,
                "hot": fact.hot,
            }
        )
    return rows


def figure8_dfsm(head_len: int = 3) -> PrefixDFSM:
    """The joint prefix-match DFSM for the paper's two example streams."""
    alphabet = sorted({ch for s in EXAMPLE_STREAMS for ch in s})
    encode = {ch: i for i, ch in enumerate(alphabet)}
    streams = [
        HotDataStream(tuple(encode[ch] for ch in text), heat=100 - 10 * i, rule_id=i)
        for i, text in enumerate(EXAMPLE_STREAMS)
    ]
    return build_dfsm(streams, head_len=head_len)


# ------------------------------------------------------------- workload runs


class ResultCache:
    """Memoizes (workload, level, passes, config-ish) executions.

    A thin session-scoped layer over the experiment engine: each requested
    pair becomes a :class:`~repro.engine.spec.RunSpec`, replayed from the
    attached :class:`~repro.engine.cache.ResultStore` when its fingerprint is
    already on disk.  :meth:`warm` resolves a batch of pairs up front —
    across a process pool when ``jobs > 1`` — so the figure functions can
    declare their whole grid before rendering row by row.

    When a :class:`~repro.telemetry.session.TelemetryRecorder` is attached,
    every execution runs live and in-process (events cannot be replayed from
    the store nor shipped across a pool boundary), streams its events into
    the recorder's shared JSONL log and contributes a ``workload/level``
    metrics snapshot.
    """

    def __init__(
        self,
        opt: Optional[OptimizerConfig] = None,
        passes_scale: float = 1.0,
        recorder: Optional[TelemetryRecorder] = None,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        durability=None,
    ) -> None:
        self.opt = opt if opt is not None else OptimizerConfig()
        self.passes_scale = passes_scale
        self.recorder = recorder
        self.store = store
        self.jobs = max(1, jobs)
        #: Optional :class:`~repro.durability.supervisor.DurabilityPolicy`:
        #: batches route through the supervised executor (journal +
        #: checkpoints + retries), byte-identical to the plain path.
        self.durability = durability
        self._results: dict[tuple[str, str], RunResult] = {}

    def passes_for(self, name: str) -> Optional[int]:
        if self.passes_scale == 1.0:
            return None
        if name == "phaseshift":
            return max(2, int(PhaseShiftParams().passes * self.passes_scale))
        return max(2, int(presets.params_for(name).passes * self.passes_scale))

    def spec_for(self, name: str, level: str) -> RunSpec:
        """The engine spec this cache would execute for ``(name, level)``."""
        return RunSpec(
            workload=name,
            level=level,
            passes=self.passes_for(name),
            machine=PAPER_MACHINE,
            opt=self.opt,
        )

    @property
    def _recording(self) -> bool:
        return self.recorder is not None and self.recorder.enabled

    def warm(self, pairs: Sequence[tuple[str, str]]) -> None:
        """Resolve a batch of (workload, level) pairs before rendering.

        No-op for already-memoized pairs and under a telemetry recorder
        (those runs must stay live and serial); otherwise cache hits replay
        instantly and the misses simulate, in parallel when ``jobs > 1``.
        """
        if self._recording:
            return
        todo = [p for p in dict.fromkeys(pairs) if p not in self._results]
        if not todo:
            return
        plan = RunPlan.of(*(self.spec_for(n, lvl) for n, lvl in todo))
        results = execute_plan(
            plan, jobs=self.jobs, store=self.store, durability=self.durability
        )
        for pair, result in zip(todo, results):
            self._results[pair] = result

    def get(self, name: str, level: str) -> RunResult:
        key = (name, level)
        if key not in self._results:
            spec = self.spec_for(name, level)
            if self._recording:
                session = self.recorder.session_for(name, level)
                result = run_spec(spec, telemetry=session)
                self.recorder.record(name, level, session)
            else:
                result = run_spec(spec, store=self.store)
            self._results[key] = result
        return self._results[key]


def figure11_rows(cache: ResultCache, names: Optional[Sequence[str]] = None) -> list[dict]:
    """Figure 11: Base / Prof / Hds overhead (percent) per benchmark."""
    names = list(names or presets.names())
    cache.warm([(n, lvl) for n in names for lvl in ("orig", "base", "prof", "hds")])
    rows = []
    for name in names:
        orig = cache.get(name, "orig")
        rows.append(
            {
                "benchmark": name,
                "base_pct": cache.get(name, "base").overhead_vs(orig),
                "prof_pct": cache.get(name, "prof").overhead_vs(orig),
                "hds_pct": cache.get(name, "hds").overhead_vs(orig),
            }
        )
    return rows


def figure12_rows(cache: ResultCache, names: Optional[Sequence[str]] = None) -> list[dict]:
    """Figure 12: No-pref / Seq-pref / Dyn-pref overhead (percent)."""
    names = list(names or presets.names())
    cache.warm([(n, lvl) for n in names for lvl in ("orig", "nopref", "seq", "dyn")])
    rows = []
    for name in names:
        orig = cache.get(name, "orig")
        rows.append(
            {
                "benchmark": name,
                "nopref_pct": cache.get(name, "nopref").overhead_vs(orig),
                "seqpref_pct": cache.get(name, "seq").overhead_vs(orig),
                "dynpref_pct": cache.get(name, "dyn").overhead_vs(orig),
            }
        )
    return rows


def figure12_quality_rows(
    cache: ResultCache,
    names: Optional[Sequence[str]] = None,
    levels: Sequence[str] = ("nopref", "seq", "dyn"),
) -> list[dict]:
    """Figure 12 companion: prefetch accuracy/timeliness/pollution per level.

    Values come from each run's metrics registry (reconciled against the
    hierarchy's :class:`~repro.machine.hierarchy.PrefetchStats` at finalize),
    so they are exactly the paper's quality axes: accuracy = used / issued
    (non-redundant), timeliness = in-time / used, pollution = evicted-unused /
    issued (non-redundant).
    """
    names = list(names or presets.names())
    cache.warm([(n, lvl) for n in names for lvl in levels])
    rows = []
    for name in names:
        for level in levels:
            metrics = cache.get(name, level).metrics
            assert metrics is not None
            rows.append(
                {
                    "benchmark": name,
                    "level": level,
                    "issued": metrics.counter("prefetch.issued").value,
                    "accuracy": metrics.gauge("prefetch.accuracy").value,
                    "timeliness": metrics.gauge("prefetch.timeliness").value,
                    "pollution": metrics.gauge("prefetch.pollution").value,
                }
            )
    return rows


def table2_rows(cache: ResultCache, names: Optional[Sequence[str]] = None) -> list[dict]:
    """Table 2: per-optimization-cycle characterization of the dyn runs."""
    names = list(names or presets.names())
    cache.warm([(n, "dyn") for n in names])
    rows = []
    for name in names:
        result = cache.get(name, "dyn")
        summary = result.summary
        assert summary is not None
        rows.append(
            {
                "benchmark": name,
                "opt_cycles": summary.num_cycles,
                "traced_refs_per_cycle": round(summary.mean_traced_refs),
                "hds_per_cycle": round(summary.mean_streams, 1),
                "dfsm_states": round(summary.mean_dfsm_states),
                "dfsm_transitions": round(summary.mean_dfsm_transitions),
                "dfsm_checks": round(summary.mean_injected_checks),
                "procs_modified": round(summary.mean_procs_modified, 1),
            }
        )
    return rows


def ablation_headlen(
    name: str,
    head_lens: Sequence[int] = (1, 2, 3),
    opt: Optional[OptimizerConfig] = None,
    passes: Optional[int] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> list[dict]:
    """Section 4.3: vary the matched prefix length before prefetching.

    The paper found headLen=2 best: 1 is cheaper but less accurate, 3 adds
    matching overhead without accuracy gains.
    """
    base_opt = opt if opt is not None else OptimizerConfig()
    plan = RunPlan.of(
        RunSpec(name, "orig", passes=passes),
        *(
            RunSpec(name, "dyn", passes=passes, opt=replace(base_opt, head_len=head_len))
            for head_len in head_lens
        ),
    )
    orig, *variants = execute_plan(plan, jobs=jobs, store=store, durability=durability)
    rows = []
    for head_len, result in zip(head_lens, variants):
        prefetch = result.hierarchy.prefetch
        rows.append(
            {
                "head_len": head_len,
                "dynpref_pct": result.overhead_vs(orig),
                "prefetch_accuracy": round(prefetch.accuracy, 3),
                "prefetches_issued": prefetch.issued,
            }
        )
    return rows


#: Machine for the watchdog ablation.  A wasted prefetch is only *classified*
#: when its line is evicted, so the L2 is small enough that the workload's
#: cold scrub evicts stale prefetches within a poll window, and prefetch
#: issue is expensive enough that mostly-wrong streams carry a real cost.
ABLATION_WATCHDOG_MACHINE = MachineConfig(
    l1=CacheGeometry(4 * 1024, 4),
    l2=CacheGeometry(32 * 1024, 8),
    l2_latency=12,
    memory_latency=100,
    prefetch_issue_cost=8,
)
#: Short profiling, long hibernation: installed streams run long enough to
#: go stale when the workload rotates its hot tails mid-hibernation.
ABLATION_WATCHDOG_OPT = OptimizerConfig(n_awake=20, n_hibernate=300)
#: The winning watchdog policy on phase-shift behaviour: roll back condemned
#: streams individually but do *not* re-profile when the last one dies —
#: phases rotate faster than a fresh optimization cycle pays for itself.
ABLATION_WATCHDOG_CONFIG = WatchdogConfig(check_every=4, min_samples=16, wake_on_empty=False)


def ablation_watchdog(
    passes: Optional[int] = None,
    fault_seed: Optional[int] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> list[dict]:
    """Extension: the prefetch watchdog on an adversarial phase-shift workload.

    The phaseshift workload keeps each hot stream's *head* phase-invariant
    while rotating the tail it predicts through three disjoint working sets,
    so every installed stream goes stale mid-hibernation.  Unguarded dyn
    keeps issuing the stale prefetches; the watchdog's scoreboard condemns
    and rolls back each stream as its accuracy collapses, landing within a
    few percent of the no-prefetch baseline.

    With ``fault_seed`` set, a fourth row runs the watchdog variant under
    deterministic fault injection (:mod:`repro.resilience.faults`) — the run
    must still complete, demonstrating graceful degradation.
    """
    wd_opt = replace(ABLATION_WATCHDOG_OPT, watchdog=ABLATION_WATCHDOG_CONFIG)
    variants: list[tuple[str, str, OptimizerConfig]] = [
        ("nopref", "nopref", ABLATION_WATCHDOG_OPT),
        ("dyn", "dyn", ABLATION_WATCHDOG_OPT),
        ("dyn+watchdog", "dyn", wd_opt),
    ]
    if fault_seed is not None:
        variants.append(
            ("dyn+watchdog+faults", "dyn", replace(wd_opt, faults=FaultPlan(seed=fault_seed)))
        )
    plan = RunPlan.of(
        *(
            RunSpec(
                "phaseshift",
                level,
                passes=passes,
                machine=ABLATION_WATCHDOG_MACHINE,
                opt=opt,
            )
            for _, level, opt in variants
        )
    )
    results = execute_plan(plan, jobs=jobs, store=store, durability=durability)
    baseline = results[0]
    rows: list[dict] = []
    for (label, _level, _opt), result in zip(variants, results):
        summary = result.summary
        assert summary is not None
        prefetch = result.hierarchy.prefetch
        rows.append(
            {
                "variant": label,
                "cycles": result.cycles,
                "vs_nopref_pct": round(result.overhead_vs(baseline), 2),
                "opt_cycles": summary.num_cycles,
                "deopts": summary.stream_deopts,
                "early_wakes": summary.early_wakes,
                "errors": summary.optimizer_errors,
                "faults": summary.faults_injected,
                "issued": prefetch.issued,
                "useful": prefetch.useful,
                "wasted": prefetch.wasted,
                # Every rollback emits one StreamDeoptimized event alongside
                # the summary counter; the summary survives cache replay.
                "deopt_events": summary.stream_deopts,
            }
        )
    return rows


def ablation_hwpref(
    name: str,
    passes: Optional[int] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> list[dict]:
    """Section 4.3/5.1: hardware stride and Markov prefetchers vs. dyn.

    The hardware baselines are cost-free in the model (no instruction
    overhead), yet stride prefetching cannot cover the pointer-chasing hot
    streams ("many will not be successfully prefetched using a simple
    stride-based prefetching scheme").
    """
    schemes = ("stride", "markov", "dyn")
    plan = RunPlan.of(
        RunSpec(name, "orig", passes=passes),
        *(RunSpec(name, level, passes=passes) for level in schemes),
    )
    orig, *variants = execute_plan(plan, jobs=jobs, store=store, durability=durability)
    rows = []
    for level, result in zip(schemes, variants):
        prefetch = result.hierarchy.prefetch
        rows.append(
            {
                "scheme": level,
                "overhead_pct": result.overhead_vs(orig),
                "prefetch_accuracy": round(prefetch.accuracy, 3),
                "useful": prefetch.useful,
                "wasted": prefetch.wasted,
            }
        )
    return rows
