"""Experiment harness: measurement levels, figure/table regeneration, CLI."""

from repro.bench.figures import (
    ResultCache,
    ablation_headlen,
    ablation_hwpref,
    figure4_grammar,
    figure8_dfsm,
    figure11_rows,
    figure12_rows,
    table1_rows,
    table2_rows,
)
from repro.bench.reporting import format_table
from repro.bench.runner import LEVELS, RunResult, configure_level, run_level, run_workload

__all__ = [
    "ResultCache",
    "figure4_grammar",
    "table1_rows",
    "figure8_dfsm",
    "figure11_rows",
    "figure12_rows",
    "table2_rows",
    "ablation_headlen",
    "ablation_hwpref",
    "format_table",
    "LEVELS",
    "RunResult",
    "run_level",
    "run_workload",
    "configure_level",
]
