"""Reference Sequitur: the original linked-object implementation, verbatim.

This is the per-:class:`Symbol` doubly-linked implementation that
``repro.sequitur`` shipped before the flat-core refactor, demoted to the
oracle as the differential baseline.  It is deliberately simple and slow —
one Python call frame per token, one heap object per symbol — which is
exactly what makes it trustworthy: the flat engine must reproduce its
grammars bit-for-bit (same rules, same refcounts, same ``rules`` and
``_digrams`` dict insertion orders, identical ``__getstate__`` wire state).
The fuzz driver and the golden-grid differential compare the two; keep this
module frozen unless the algorithm itself changes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

from repro.errors import AnalysisError


class Symbol:
    """One node in a rule body (or the rule's guard node)."""

    __slots__ = ("next", "prev", "terminal", "rule", "owner")

    def __init__(
        self,
        terminal: Optional[int] = None,
        rule: Optional["RefRule"] = None,
        owner: Optional["RefRule"] = None,
    ) -> None:
        self.next: Optional[Symbol] = None
        self.prev: Optional[Symbol] = None
        self.terminal = terminal
        self.rule = rule
        #: set only on guard nodes: the rule this guard heads
        self.owner = owner
        if rule is not None:
            rule.refcount += 1

    @property
    def is_guard(self) -> bool:
        return self.owner is not None

    @property
    def key(self) -> int:
        """Digram key: terminals map to themselves, rules to negative ids."""
        if self.rule is not None:
            return -1 - self.rule.id
        assert self.terminal is not None
        return self.terminal

    def value(self) -> Union[int, "RefRule"]:
        """The payload: a terminal int or a RefRule."""
        return self.rule if self.rule is not None else self.terminal  # type: ignore[return-value]

    def __reduce__(self):  # pragma: no cover - defensive
        raise TypeError("Symbol is not picklable on its own; pickle the RefSequitur")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_guard:
            return f"<guard R{self.owner.id}>"  # type: ignore[union-attr]
        if self.rule is not None:
            return f"<R{self.rule.id}>"
        return f"<{self.terminal}>"


class RefRule:
    """A grammar rule; its body hangs off the guard node."""

    __slots__ = ("id", "refcount", "guard")

    def __init__(self, rule_id: int) -> None:
        self.id = rule_id
        #: number of non-terminal symbols referring to this rule
        self.refcount = 0
        self.guard = Symbol(owner=self)
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> Symbol:
        assert self.guard.next is not None
        return self.guard.next

    def last(self) -> Symbol:
        assert self.guard.prev is not None
        return self.guard.prev

    @property
    def is_empty(self) -> bool:
        return self.guard.next is self.guard

    def symbols(self) -> Iterator[Symbol]:
        """Iterate the body symbols left to right (excluding the guard)."""
        node = self.guard.next
        while node is not self.guard:
            assert node is not None
            yield node
            node = node.next

    def rhs(self) -> list[Union[int, "RefRule"]]:
        """Body as a list of terminals and RefRule references."""
        return [sym.value() for sym in self.symbols()]

    def rhs_length(self) -> int:
        """Number of symbols on the right-hand side."""
        return sum(1 for _ in self.symbols())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RefRule(R{self.id}, refs={self.refcount})"


class RefSequitur:
    """Online grammar inference over a stream of integer tokens (reference)."""

    def __init__(self) -> None:
        self._next_rule_id = 0
        self.start = self._new_rule()
        #: live rules by id (includes the start rule)
        self.rules: dict[int, RefRule] = {self.start.id: self.start}
        #: digram key-pair -> leftmost symbol of the indexed digram
        self._digrams: dict[tuple[int, int], Symbol] = {}
        self.length = 0

    # ------------------------------------------------------------- plumbing

    def _new_rule(self) -> RefRule:
        rule = RefRule(self._next_rule_id)
        self._next_rule_id += 1
        return rule

    def _digram_key(self, sym: Symbol) -> tuple[int, int]:
        assert sym.next is not None
        return (sym.key, sym.next.key)

    def _index(self, sym: Symbol) -> None:
        """Record the digram starting at ``sym`` in the index."""
        if sym.is_guard or sym.next is None or sym.next.is_guard:
            return
        self._digrams[self._digram_key(sym)] = sym

    def _unindex(self, sym: Symbol) -> None:
        """Remove the digram starting at ``sym`` iff the index points at it."""
        if sym.is_guard or sym.next is None or sym.next.is_guard:
            return
        key = self._digram_key(sym)
        if self._digrams.get(key) is sym:
            del self._digrams[key]

    def _join(self, left: Symbol, right: Symbol) -> None:
        """Link ``left`` -> ``right``, maintaining the digram index."""
        if left.next is not None:
            self._unindex(left)
            # Overlapping-triple repair (e.g. "aaa"): unindexing (left, old
            # next) may have removed an entry that a neighbouring equal-value
            # digram should now own.
            rp, rn = right.prev, right.next
            if (
                rp is not None
                and rn is not None
                and not right.is_guard
                and not rp.is_guard
                and not rn.is_guard
                and rp.key == right.key == rn.key
            ):
                self._index(right)
            lp, ln = left.prev, left.next
            if (
                lp is not None
                and ln is not None
                and not left.is_guard
                and not lp.is_guard
                and not ln.is_guard
                and lp.key == left.key == ln.key
            ):
                self._index(lp)
        left.next = right
        right.prev = left

    def _insert_after(self, at: Symbol, sym: Symbol) -> None:
        assert at.next is not None
        self._join(sym, at.next)
        self._join(at, sym)

    def _delete(self, sym: Symbol) -> None:
        """Unlink ``sym`` from its rule, updating index and refcounts."""
        assert sym.prev is not None and sym.next is not None
        self._join(sym.prev, sym.next)
        if not sym.is_guard:
            self._unindex(sym)
            if sym.rule is not None:
                sym.rule.refcount -= 1

    # ------------------------------------------------------ the two invariants

    def _check(self, sym: Symbol) -> bool:
        """Enforce digram uniqueness for the digram starting at ``sym``."""
        if sym.is_guard or sym.next is None or sym.next.is_guard:
            return False
        key = self._digram_key(sym)
        match = self._digrams.get(key)
        if match is None:
            self._digrams[key] = sym
            return False
        if match.next is sym:
            # Overlapping occurrence (e.g. the middle of "aaa"): do nothing.
            return True
        self._match(sym, match)
        return True

    def _match(self, new: Symbol, match: Symbol) -> None:
        """Handle a repeated digram: reuse or create a rule."""
        assert match.prev is not None and match.next is not None
        assert match.next.next is not None
        if match.prev.is_guard and match.next.next.is_guard:
            # The matching digram is the entire body of an existing rule.
            rule = match.prev.owner
            assert rule is not None
            self._substitute(new, rule)
        else:
            rule = self._new_rule()
            self.rules[rule.id] = rule
            assert new.next is not None
            first = Symbol(terminal=new.terminal, rule=new.rule)
            second = Symbol(terminal=new.next.terminal, rule=new.next.rule)
            self._insert_after(rule.guard, first)
            self._insert_after(first, second)
            self._substitute(match, rule)
            self._substitute(new, rule)
            self._index(rule.first())
        # Rule utility: substitution may have dropped some rule's use count
        # to one; the remaining use can only be inside the (re)used rule.
        for candidate in (rule.first(), rule.last()):
            if candidate.rule is not None and candidate.rule.refcount == 1:
                self._expand(candidate)
                break

    def _substitute(self, sym: Symbol, rule: RefRule) -> None:
        """Replace the digram starting at ``sym`` with non-terminal ``rule``."""
        prev = sym.prev
        assert prev is not None and prev.next is not None
        self._delete(prev.next)
        assert prev.next is not None
        self._delete(prev.next)
        self._insert_after(prev, Symbol(rule=rule))
        if not self._check(prev):
            assert prev.next is not None
            self._check(prev.next)

    def _expand(self, sym: Symbol) -> None:
        """Inline the under-used rule referenced by ``sym`` and delete it."""
        rule = sym.rule
        assert rule is not None and rule.refcount == 1
        left, right = sym.prev, sym.next
        assert left is not None and right is not None
        first, last = rule.first(), rule.last()
        self._unindex(sym)
        del self.rules[rule.id]
        self._join(left, first)
        self._join(last, right)
        self._index(last)

    # --------------------------------------------------------------- public

    def append(self, token: int) -> None:
        """Append one terminal to the inferred string."""
        if token < 0:
            raise AnalysisError(f"terminals must be non-negative, got {token}")
        self.length += 1
        last = self.start.last()
        self._insert_after(last, Symbol(terminal=token))
        if last is not self.start.guard:
            self._check(last)

    def extend(self, tokens: Iterable[int]) -> None:
        """Append a sequence of terminals."""
        for token in tokens:
            self.append(token)

    def grammar_size(self) -> int:
        """Total number of symbols on all right-hand sides."""
        return sum(rule.rhs_length() for rule in self.rules.values())

    def expansion_lengths(self) -> dict[int, int]:
        """Expansion (terminal-string) length of every rule, by rule id."""
        lengths: dict[int, int] = {}

        def visit(rule: RefRule) -> int:
            cached = lengths.get(rule.id)
            if cached is not None:
                return cached
            total = 0
            for value in rule.rhs():
                total += 1 if isinstance(value, int) else visit(value)
            lengths[rule.id] = total
            return total

        for rule in self.rules.values():
            visit(rule)
        return lengths

    def expand(
        self, rule: Optional[RefRule] = None, limit: Optional[int] = None
    ) -> list[int]:
        """Terminal expansion of ``rule`` (default: the whole string)."""
        if rule is None:
            rule = self.start
        out: list[int] = []

        def walk(r: RefRule) -> bool:
            for value in r.rhs():
                if isinstance(value, int):
                    out.append(value)
                    if limit is not None and len(out) >= limit:
                        return False
                else:
                    if not walk(value):
                        return False
            return True

        walk(rule)
        return out

    def children(self, rule: RefRule) -> list[RefRule]:
        """Rules appearing on ``rule``'s right-hand side (with repetition)."""
        return [value for value in rule.rhs() if isinstance(value, RefRule)]

    # ---------------------------------------------------------- serialization

    def __getstate__(self) -> dict:
        """Flatten the grammar for pickling — the shared wire format.

        Identical to :meth:`repro.sequitur.sequitur.Sequitur.__getstate__`;
        state-dict equality between the two engines is the grammar
        fingerprint the differential tests compare.
        """
        symbol_index: dict[int, int] = {}
        bodies: list[tuple[int, int, list[tuple[Optional[int], Optional[int]]]]] = []
        for rule in self.rules.values():
            body: list[tuple[Optional[int], Optional[int]]] = []
            for sym in rule.symbols():
                symbol_index[id(sym)] = len(symbol_index)
                body.append((sym.terminal, sym.rule.id if sym.rule is not None else None))
            bodies.append((rule.id, rule.refcount, body))
        return {
            "next_rule_id": self._next_rule_id,
            "start_id": self.start.id,
            "length": self.length,
            "rules": bodies,
            "digrams": [(key, symbol_index[id(sym)]) for key, sym in self._digrams.items()],
        }

    def __setstate__(self, state: dict) -> None:
        """Rebuild the linked structure iteratively (inverse of __getstate__)."""
        self._next_rule_id = state["next_rule_id"]
        self.length = state["length"]
        rules: dict[int, RefRule] = {
            rule_id: RefRule(rule_id) for rule_id, _, _ in state["rules"]
        }
        flat: list[Symbol] = []
        for rule_id, refcount, body in state["rules"]:
            rule = rules[rule_id]
            rule.refcount = refcount
            prev = rule.guard
            for terminal, ref_id in body:
                sym = Symbol.__new__(Symbol)
                sym.terminal = terminal
                sym.rule = rules[ref_id] if ref_id is not None else None
                sym.owner = None
                sym.prev = prev
                sym.next = None
                prev.next = sym
                prev = sym
                flat.append(sym)
            prev.next = rule.guard
            rule.guard.prev = prev
        self.rules = rules
        self.start = rules[state["start_id"]]
        self._digrams = {key: flat[pos] for key, pos in state["digrams"]}

    # ------------------------------------------------------------ inspection

    def to_text(self, terminal_names: Optional[dict[int, str]] = None) -> str:
        """Readable rendering, e.g. ``S -> A a B B`` (start rule is ``S``)."""

        def name(rule: RefRule) -> str:
            return "S" if rule is self.start else f"R{rule.id}"

        def term(token: int) -> str:
            if terminal_names and token in terminal_names:
                return terminal_names[token]
            return str(token)

        lines = []
        for rule_id in sorted(self.rules):
            rule = self.rules[rule_id]
            rhs = " ".join(name(v) if isinstance(v, RefRule) else term(v) for v in rule.rhs())
            lines.append(f"{name(rule)} -> {rhs}")
        return "\n".join(lines)

    def verify_invariants(self) -> None:
        """Assert digram uniqueness, rule utility and refcount consistency."""
        seen: dict[tuple[int, int], tuple[int, int]] = {}
        refcounts: dict[int, int] = {rule_id: 0 for rule_id in self.rules}
        for rule in self.rules.values():
            position = 0
            for sym in rule.symbols():
                if sym.rule is not None:
                    if sym.rule.id not in self.rules:
                        raise AnalysisError(f"R{rule.id} references dead rule R{sym.rule.id}")
                    refcounts[sym.rule.id] += 1
                nxt = sym.next
                assert nxt is not None
                if not nxt.is_guard:
                    key = (sym.key, nxt.key)
                    prior = seen.get(key)
                    if prior is not None and prior != (rule.id, position - 1):
                        raise AnalysisError(f"digram {key} occurs twice: {prior} and R{rule.id}")
                    seen[key] = (rule.id, position)
                position += 1
        for rule_id, count in refcounts.items():
            rule = self.rules[rule_id]
            if rule is self.start:
                continue
            if count < 2:
                raise AnalysisError(f"rule utility violated: R{rule_id} used {count} times")
            if count != rule.refcount:
                raise AnalysisError(
                    f"refcount drift on R{rule_id}: stored {rule.refcount}, actual {count}"
                )
