"""Golden trace corpus: frozen per-run stats for all seven workloads.

Each golden entry runs one workload at one measurement level with a small,
fixed pass count and captures every deterministic counter the simulation
produces — interpreter stats, per-level cache counters, the prefetch
classification and the optimizer summary — as a JSON file under
``tests/golden/``.  Verification re-runs the workload and compares
bit-for-bit: the simulator is fully deterministic, so *any* drift is either
an intended behaviour change (re-record with ``repro-bench verify
--update-golden``) or a regression (fix it).

The corpus covers the six Section 4.1 preset analogues plus the adversarial
``phaseshift`` workload, each at ``orig`` (pure simulation baseline) and
``dyn`` (the full online pipeline), so a drift pinpoints which half moved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.engine.cache import ResultStore
from repro.engine.executor import execute_plan, run_spec
from repro.engine.result import RunResult
from repro.engine.spec import RunPlan, RunSpec
from repro.errors import OracleError
from repro.oracle.invariants import run_fingerprint
from repro.workloads import presets
from repro.workloads.base import BuiltWorkload
from repro.workloads.phaseshift import build_phaseshift

#: Format version stamped into every golden file; bump on schema changes.
GOLDEN_FORMAT = 1

_SUMMARY_FIELDS = (
    "num_cycles",
    "guard_rejections",
    "stream_deopts",
    "early_wakes",
    "optimizer_errors",
    "faults_injected",
)


@dataclass(frozen=True)
class GoldenRun:
    """One (workload, level) cell of the corpus."""

    workload: str
    level: str
    passes: int

    @property
    def stem(self) -> str:
        return f"{self.workload}-{self.level}"


def _corpus() -> tuple[GoldenRun, ...]:
    runs = []
    for name in (*presets.names(), "phaseshift"):
        for level in ("orig", "dyn"):
            runs.append(GoldenRun(workload=name, level=level, passes=2))
    return tuple(runs)


#: The full corpus: seven workloads x (orig, dyn), two passes each.
GOLDEN_RUNS: tuple[GoldenRun, ...] = _corpus()


def default_golden_dir() -> Path:
    """``tests/golden`` of the repo this package lives in (src layout)."""
    in_repo = Path(__file__).resolve().parents[3] / "tests" / "golden"
    if in_repo.parent.is_dir():
        return in_repo
    return Path.cwd() / "tests" / "golden"


def build_golden_workload(run: GoldenRun) -> BuiltWorkload:
    if run.workload == "phaseshift":
        return build_phaseshift(passes=run.passes)
    return presets.build(run.workload, passes=run.passes)


def golden_spec(run: GoldenRun) -> RunSpec:
    """The engine spec equivalent to one corpus cell (default machine/opt)."""
    return RunSpec(workload=run.workload, level=run.level, passes=run.passes)


def execute_golden(run: GoldenRun, store: Optional[ResultStore] = None) -> RunResult:
    return run_spec(golden_spec(run), store=store)


def _execute_corpus(
    runs: tuple[GoldenRun, ...],
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> list[RunResult]:
    """Execute a batch of corpus cells (parallel when ``jobs > 1``).

    ``durability`` routes the batch through the supervised executor
    (journal, checkpoints, retries) — byte-identical results, so golden
    verification under chaos is the same verification.
    """
    plan = RunPlan.of(*(golden_spec(run) for run in runs))
    return execute_plan(plan, jobs=jobs, store=store, durability=durability)


def golden_record(run: GoldenRun, result: RunResult) -> dict:
    """The JSON document frozen for one run."""
    record: dict = {
        "format": GOLDEN_FORMAT,
        "workload": run.workload,
        "level": run.level,
        "passes": run.passes,
        "stats": {k: v for k, v in sorted(run_fingerprint(result).items())},
    }
    if result.summary is not None:
        record["summary"] = {
            name: getattr(result.summary, name) for name in _SUMMARY_FIELDS
        }
    return record


def record_corpus(
    directory: Union[str, Path, None] = None,
    runs: Optional[tuple[GoldenRun, ...]] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> list[Path]:
    """(Re-)run every corpus entry and freeze its stats JSON; return paths."""
    runs = runs if runs is not None else GOLDEN_RUNS
    directory = Path(directory) if directory is not None else default_golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for run, result in zip(
        runs, _execute_corpus(runs, store=store, jobs=jobs, durability=durability)
    ):
        record = golden_record(run, result)
        path = directory / f"{run.stem}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def verify_corpus(
    directory: Union[str, Path, None] = None,
    runs: Optional[tuple[GoldenRun, ...]] = None,
    workload: Optional[str] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> list[str]:
    """Re-run the corpus and diff against the frozen files.

    Returns a list of human-readable mismatch descriptions (empty = all
    bit-identical).  A missing golden file is a mismatch, not an error — the
    caller decides whether to record.

    ``store``/``jobs`` route the executions through the engine's result
    cache and process pool; because the cache key covers the simulator's
    code version, a cached replay verifies exactly what a live run would.
    """
    runs = runs if runs is not None else GOLDEN_RUNS
    if workload is not None:
        runs = tuple(run for run in runs if run.workload == workload)
    directory = Path(directory) if directory is not None else default_golden_dir()
    failures: list[str] = []
    for run, result in zip(
        runs, _execute_corpus(runs, store=store, jobs=jobs, durability=durability)
    ):
        path = directory / f"{run.stem}.json"
        if not path.is_file():
            failures.append(f"{run.stem}: golden file missing ({path})")
            continue
        try:
            frozen = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            failures.append(f"{run.stem}: golden file unreadable: {err}")
            continue
        fresh = golden_record(run, result)
        if frozen != fresh:
            failures.append(_describe_drift(run, frozen, fresh))
    return failures


def check_corpus(
    directory: Union[str, Path, None] = None,
    runs: Optional[tuple[GoldenRun, ...]] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    durability=None,
) -> None:
    """Raise :class:`OracleError` on any corpus drift (test-friendly form)."""
    failures = verify_corpus(directory, runs, store=store, jobs=jobs, durability=durability)
    if failures:
        raise OracleError("golden corpus drift:\n" + "\n".join(failures))


def _describe_drift(run: GoldenRun, frozen: dict, fresh: dict) -> str:
    drifted: list[str] = []
    for section in ("stats", "summary"):
        old = frozen.get(section, {}) or {}
        new = fresh.get(section, {}) or {}
        for key in sorted(set(old) | set(new)):
            if old.get(key) != new.get(key):
                drifted.append(f"{section}.{key}: {old.get(key)} -> {new.get(key)}")
    for key in ("format", "workload", "level", "passes"):
        if frozen.get(key) != fresh.get(key):
            drifted.append(f"{key}: {frozen.get(key)} -> {fresh.get(key)}")
    detail = ", ".join(drifted) if drifted else "files differ"
    return f"{run.stem}: {detail}"
