"""repro.oracle — differential and property-based verification subsystem.

Three layers, each usable on its own:

* **Reference models** (:mod:`~repro.oracle.refmodel`,
  :mod:`~repro.oracle.refgrammar`, :mod:`~repro.oracle.refstreams`) —
  deliberately simple, independently written implementations of the cache
  hierarchy, the Sequitur invariants and the exact hot-stream definition,
  cross-checked against the production code on randomized inputs.
* **Metamorphic invariants** (:mod:`~repro.oracle.invariants`) — reusable
  whole-run checkers: conservation laws, architectural-state preservation,
  the telemetry observer effect, inert fault plans, address relabeling.
* **Drivers** (:mod:`~repro.oracle.fuzz`, :mod:`~repro.oracle.golden`,
  :mod:`~repro.oracle.verify`) — seeded fuzzing with ddmin shrinking to
  minimal reproducers, the frozen golden corpus under ``tests/golden/``, and
  the ``repro-bench verify`` orchestration.

Every disagreement surfaces as :class:`~repro.errors.OracleError`.
"""

from repro.errors import OracleError
from repro.oracle.fuzz import (
    check_with_shrinking,
    diff_cache,
    diff_hierarchy,
    diff_sequitur,
    diff_streams,
    gen_cache_ops,
    gen_hierarchy_ops,
    gen_trace,
    shrink_ops,
)
from repro.oracle.golden import (
    GOLDEN_RUNS,
    GoldenRun,
    check_corpus,
    default_golden_dir,
    record_corpus,
    verify_corpus,
)
from repro.oracle.invariants import (
    check_architectural_state,
    check_conservation,
    check_cycle_attribution,
    check_disabled_resilience_identical,
    check_observer_effect,
    check_relabel_invariance,
    check_tenancy_pollution_reconciliation,
    check_tenancy_single_equivalence,
    check_tracing_observer_effect,
    relabel_stride,
    run_fingerprint,
)
from repro.oracle.refgrammar import check_sequitur, ref_expand
from repro.oracle.refmodel import RefCache, RefHierarchy, RefPrefetchStats
from repro.oracle.refstreams import (
    check_hot_streams,
    ref_heat,
    ref_hot_substrings,
    ref_nonoverlapping_count,
)
from repro.oracle.verify import SectionResult, VerifyReport, run_verify

__all__ = [
    "OracleError",
    # reference models
    "RefCache",
    "RefHierarchy",
    "RefPrefetchStats",
    "ref_expand",
    "check_sequitur",
    "ref_nonoverlapping_count",
    "ref_heat",
    "ref_hot_substrings",
    "check_hot_streams",
    # metamorphic invariants
    "check_conservation",
    "check_cycle_attribution",
    "check_architectural_state",
    "check_observer_effect",
    "check_tracing_observer_effect",
    "check_disabled_resilience_identical",
    "check_relabel_invariance",
    "check_tenancy_single_equivalence",
    "check_tenancy_pollution_reconciliation",
    "relabel_stride",
    "run_fingerprint",
    # fuzzing
    "gen_cache_ops",
    "gen_hierarchy_ops",
    "gen_trace",
    "diff_cache",
    "diff_hierarchy",
    "diff_sequitur",
    "diff_streams",
    "shrink_ops",
    "check_with_shrinking",
    # golden corpus
    "GoldenRun",
    "GOLDEN_RUNS",
    "default_golden_dir",
    "record_corpus",
    "verify_corpus",
    "check_corpus",
    # driver
    "run_verify",
    "VerifyReport",
    "SectionResult",
]
