"""The ``repro-bench verify`` driver: run every oracle section, one report.

Sections (all seeded, all deterministic for a given ``--seed``):

``cache``       randomized differential runs, production Cache vs RefCache,
                on a conflict-heavy tiny geometry and the paper's L1.
``hierarchy``   randomized differential runs, MemoryHierarchy vs RefHierarchy,
                per-op stalls and full counter fingerprints.
``sequitur``    randomized traces through production Sequitur, its own
                ``verify_invariants`` and the independent brute-force checker.
``streams``     randomized traces: fast grammar analysis vs the O(n²)
                enumerator (conservativeness + membership), and the two
                brute-force enumerators against each other.
``invariants``  metamorphic whole-run checks on a small workload: counter
                conservation across levels, architectural-state preservation,
                telemetry observer effect, inert fault plans, address
                relabeling, cache-replay identity, checkpoint-resume
                identity.
``fastpath``    compiled-kernel identity: every golden (workload, level)
                cell executed by the reference dispatch loop and by
                ``repro.fastpath``, bit-compared (store bypassed, so cache
                hits cannot make the comparison vacuous).
``obs``         streaming observability: every golden cell run with the
                chunked exporter attached — zero observer effect, the
                concatenated sealed chunks byte-identical to the buffered
                JSONL, the chunk-merged Chrome trace byte-identical to the
                buffered render — and per-procedure attribution summing
                exactly to the 7-category totals, reference vs fastpath
                rows identical.
``golden``      the frozen corpus under ``tests/golden/`` (skippable).

Differential failures are delta-debugged to 1-minimal reproducers before
reporting.  The driver never stops at the first failure — the report lists
every section's verdict so one broken invariant doesn't hide another.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.analysis.hotstreams import AnalysisConfig
from repro.bench.runner import run_workload
from repro.errors import OracleError
from repro.machine.config import CacheGeometry, MachineConfig
from repro.oracle import fuzz, golden
from repro.oracle.invariants import (
    check_architectural_state,
    check_cache_replay_identity,
    check_checkpoint_resume_identity,
    check_conservation,
    check_cycle_attribution,
    check_disabled_resilience_identical,
    check_fastpath_identity,
    check_observer_effect,
    check_proc_attribution,
    check_streaming_trace_identity,
    check_relabel_invariance,
    check_tenancy_pollution_reconciliation,
    check_tenancy_single_equivalence,
    check_tracing_observer_effect,
)
from repro.workloads import presets

#: Tiny geometry: 4 sets x 2 ways creates constant conflict pressure.
STRESS_GEOMETRY = CacheGeometry(size_bytes=256, associativity=2, block_bytes=32)
#: Small two-level machine for hierarchy fuzzing (mirrors the test fixtures).
STRESS_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
)

#: Analysis settings for the stream differential: permissive enough that
#: random motif traces actually produce streams to cross-check.
FUZZ_ANALYSIS = AnalysisConfig(heat_ratio=0.05, min_length=2, max_length=20, min_unique=0)

#: Workload used by the metamorphic section (smallest preset, one pass).
_INVARIANT_WORKLOAD = "vortex"


@dataclass
class SectionResult:
    """Outcome of one verify section."""

    name: str
    cases: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def run_case(self, check: Callable[[], None]) -> None:
        self.cases += 1
        try:
            check()
        except OracleError as err:
            self.failures.append(str(err))


@dataclass
class VerifyReport:
    """Aggregate over all sections; ``ok`` is the CLI exit condition."""

    seed: int
    runs: int
    sections: list[SectionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(section.ok for section in self.sections)

    def format(self) -> str:
        lines = [f"oracle verification (seed={self.seed}, runs={self.runs})"]
        for section in self.sections:
            verdict = "ok" if section.ok else f"FAIL ({len(section.failures)})"
            lines.append(f"  {section.name:<11} {section.cases:>4} cases  {verdict}")
            for failure in section.failures:
                first, *rest = failure.splitlines()
                lines.append(f"    - {first}")
                lines.extend(f"      {line}" for line in rest)
        # The verdict line echoes the seed/run count: failures are usually
        # reported by pasting this one line, and it must be enough to
        # reproduce the exact randomized sections that failed.
        verdict = "PASSED" if self.ok else "FAILED"
        lines.append(f"VERIFY {verdict} (seed={self.seed}, runs={self.runs})")
        return "\n".join(lines)


def _verify_cache(rng: random.Random, runs: int) -> SectionResult:
    section = SectionResult("cache")
    for geometry in (STRESS_GEOMETRY, MachineConfig().l1):
        for _ in range(runs):
            ops = fuzz.gen_cache_ops(rng, 400, geometry)
            section.run_case(
                lambda g=geometry, o=ops: fuzz.check_with_shrinking(
                    o, lambda seq: fuzz.diff_cache(g, seq), "cache differential"
                )
            )
    return section


def _verify_hierarchy(rng: random.Random, runs: int) -> SectionResult:
    section = SectionResult("hierarchy")
    for _ in range(runs):
        ops = fuzz.gen_hierarchy_ops(rng, 300, STRESS_MACHINE)
        section.run_case(
            lambda o=ops: fuzz.check_with_shrinking(
                o,
                lambda seq: fuzz.diff_hierarchy(STRESS_MACHINE, seq),
                "hierarchy differential",
            )
        )
    return section


def _verify_sequitur(rng: random.Random, runs: int) -> SectionResult:
    section = SectionResult("sequitur")
    for _ in range(runs):
        trace = fuzz.gen_trace(rng, rng.randint(20, 300), alphabet=rng.randint(2, 10))
        section.run_case(
            lambda t=trace: fuzz.check_with_shrinking(
                [("tok", s) for s in t],
                lambda seq: fuzz.diff_sequitur([s for _, s in seq]),
                "sequitur differential",
            )
        )
    return section


def _verify_streams(rng: random.Random, runs: int) -> SectionResult:
    section = SectionResult("streams")
    for _ in range(runs):
        trace = fuzz.gen_trace(rng, rng.randint(20, 120), alphabet=rng.randint(2, 8))
        section.run_case(
            lambda t=trace: fuzz.check_with_shrinking(
                [("tok", s) for s in t],
                lambda seq: fuzz.diff_streams([s for _, s in seq], FUZZ_ANALYSIS),
                "stream differential",
            )
        )
    return section


def _verify_invariants(rng: random.Random, runs: int) -> SectionResult:
    section = SectionResult("invariants")

    def factory():
        return presets.build(_INVARIANT_WORKLOAD, passes=1)

    def conservation_and_attribution(level: str) -> None:
        # One execution feeds both checks: total-cycle conservation and the
        # exact per-category attribution (which must sum back to that total).
        result = run_workload(factory(), level)
        check_conservation(result)
        check_cycle_attribution(result)

    for level in ("orig", "base", "prof", "hds", "seq", "dyn"):
        section.run_case(lambda lv=level: conservation_and_attribution(lv))
    section.run_case(lambda: check_architectural_state(factory))
    section.run_case(lambda: check_observer_effect(factory))
    section.run_case(lambda: check_tracing_observer_effect(factory))
    section.run_case(lambda: check_disabled_resilience_identical(factory))
    section.run_case(lambda: check_cache_replay_identity())
    section.run_case(lambda: check_checkpoint_resume_identity())
    relabel_rounds = max(1, min(runs, 5))
    for _ in range(relabel_rounds):
        ops = fuzz.gen_hierarchy_ops(rng, 200, STRESS_MACHINE)
        section.run_case(lambda o=ops: check_relabel_invariance(STRESS_MACHINE, o))
    return section


def _verify_tenancy() -> SectionResult:
    section = SectionResult("tenancy")
    section.run_case(lambda: check_tenancy_single_equivalence())
    section.run_case(lambda: check_tenancy_pollution_reconciliation())
    return section


def _verify_fastpath() -> SectionResult:
    """Reference vs compiled kernel over the golden grid (workloads x orig/dyn).

    Both legs execute fresh builds directly — never through the result store —
    so a warm cache cannot make the comparison vacuous.
    """
    from repro.engine.spec import RunSpec

    section = SectionResult("fastpath")
    for golden_run in golden.GOLDEN_RUNS:
        spec = RunSpec(golden_run.workload, golden_run.level, passes=1)
        section.run_case(lambda s=spec: check_fastpath_identity(s))
    return section


def _verify_obs() -> SectionResult:
    """Streaming export identity + per-procedure attribution, golden grid.

    Every golden (workload, level) cell runs with the chunked streaming
    exporter attached and is byte-compared against the buffered exporter
    (chunks vs JSONL, merged vs buffered Chrome render, zero observer
    effect), then re-runs with per-procedure recording through both
    execution engines to hold the by-proc split to the category totals.
    All legs execute fresh builds directly, never through the result store.
    """
    from repro.engine.spec import RunSpec

    section = SectionResult("obs")
    for golden_run in golden.GOLDEN_RUNS:
        spec = RunSpec(golden_run.workload, golden_run.level, passes=1)
        section.run_case(lambda s=spec: check_streaming_trace_identity(s))
        section.run_case(lambda s=spec: check_proc_attribution(s))
    return section


def _verify_golden(
    golden_dir: Optional[Union[str, Path]],
    store=None,
    jobs: int = 1,
    durability=None,
) -> SectionResult:
    section = SectionResult("golden")
    section.cases = len(golden.GOLDEN_RUNS)
    section.failures = golden.verify_corpus(
        golden_dir, store=store, jobs=jobs, durability=durability
    )
    return section


def run_verify(
    seed: int = 0,
    runs: int = 25,
    golden_dir: Optional[Union[str, Path]] = None,
    include_golden: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    store=None,
    jobs: int = 1,
    durability=None,
) -> VerifyReport:
    """Run every oracle section; return the aggregate report.

    ``runs`` scales the randomized sections (number of generated inputs per
    section); the metamorphic and golden sections are fixed-size.  All
    randomness derives from ``seed`` — identical arguments give identical
    reports, including any minimal reproducers.

    ``store``/``jobs`` accelerate the golden section through the engine's
    result cache and process pool; ``durability`` (a
    :class:`~repro.durability.supervisor.DurabilityPolicy`) routes the golden
    corpus through the supervised executor (journaled, checkpointed,
    optionally chaos-injected) with byte-identical results.  The randomized
    differential sections are in-process by construction (they fuzz
    components, not whole runs).
    """
    rng = random.Random(seed)
    report = VerifyReport(seed=seed, runs=runs)
    sections: list[Callable[[], SectionResult]] = [
        lambda: _verify_cache(rng, runs),
        lambda: _verify_hierarchy(rng, runs),
        lambda: _verify_sequitur(rng, runs),
        lambda: _verify_streams(rng, runs),
        lambda: _verify_invariants(rng, runs),
        _verify_tenancy,
        _verify_fastpath,
        _verify_obs,
    ]
    if include_golden:
        sections.append(
            lambda: _verify_golden(golden_dir, store=store, jobs=jobs, durability=durability)
        )
    for build in sections:
        section = build()
        report.sections.append(section)
        if progress is not None:
            verdict = "ok" if section.ok else "FAIL"
            progress(f"{section.name}: {section.cases} cases, {verdict}")
    return report
