"""Seeded fuzzing: random op/trace generators, differential drivers, shrinking.

The drivers replay one generated input against a production component and its
reference model in lockstep and raise :class:`~repro.errors.OracleError` on
the first observable difference.  When a driver fails, callers go through
:func:`check_with_shrinking`, which delta-debugs the input down to a
1-minimal op sequence (no single element can be removed and still fail) and
re-raises with the minimal reproducer embedded in the message — turning a
10⁴-op fuzz failure into something a human can replay by hand.

Everything is driven by an explicit ``random.Random`` instance; the same seed
always produces the same inputs, failures and minimal reproducers.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.analysis.exact import enumerate_hot_substrings
from repro.analysis.hotstreams import AnalysisConfig, find_hot_streams
from repro.errors import AnalysisError, OracleError
from repro.machine.cache import Cache
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy
from repro.oracle.refgrammar import check_sequitur, ref_expand
from repro.oracle.refmodel import RefCache, RefHierarchy
from repro.oracle.refsequitur import RefSequitur
from repro.oracle.refstreams import check_hot_streams, ref_hot_substrings
from repro.sequitur.sequitur import Sequitur

#: One replayable operation: (op name, operand).
Op = tuple[str, int]

_CACHE_OPS = ("lookup", "install", "contains", "invalidate", "flush")
_CACHE_WEIGHTS = (45, 35, 10, 8, 2)
_HIER_OPS = ("access", "prefetch", "flush", "finalize")
_HIER_WEIGHTS = (68, 26, 3, 3)


# ---------------------------------------------------------------- generators


def gen_cache_ops(rng, count: int, geometry: CacheGeometry) -> list[Op]:
    """Random single-cache op sequence with heavy set-conflict pressure.

    Blocks are drawn from a pool ~2x the cache's capacity so evictions and
    re-references are frequent; a sliver of far-away blocks exercises tag
    wrap-around across sets.
    """
    capacity = geometry.num_sets * geometry.associativity
    pool = max(2 * capacity, 8)
    ops: list[Op] = []
    for _ in range(count):
        (kind,) = rng.choices(_CACHE_OPS, weights=_CACHE_WEIGHTS)
        block = rng.randrange(pool) if rng.random() < 0.95 else rng.randrange(1 << 20)
        ops.append((kind, block))
    return ops


def gen_hierarchy_ops(rng, count: int, machine: MachineConfig) -> list[Op]:
    """Random hierarchy op sequence (byte addresses, unaligned on purpose)."""
    l1_blocks = machine.l1.size_bytes // machine.block_bytes
    pool_blocks = max(3 * l1_blocks, 16)
    ops: list[Op] = []
    for _ in range(count):
        (kind,) = rng.choices(_HIER_OPS, weights=_HIER_WEIGHTS)
        block = rng.randrange(pool_blocks)
        addr = block * machine.block_bytes + rng.randrange(machine.block_bytes)
        ops.append((kind, addr))
    return ops


def gen_trace(rng, length: int, alphabet: int = 8, motif_bias: float = 0.6) -> list[int]:
    """Random symbol trace with planted repetition.

    Pure noise gives Sequitur almost nothing to compress and the analysis
    nothing hot; interleaving a few repeated motifs with noise produces the
    rule nesting and partial overlaps where grammar bugs actually live.
    """
    motifs = [
        [rng.randrange(alphabet) for _ in range(rng.randint(2, 5))]
        for _ in range(rng.randint(1, 3))
    ]
    out: list[int] = []
    while len(out) < length:
        if rng.random() < motif_bias:
            out.extend(rng.choice(motifs))
        else:
            out.append(rng.randrange(alphabet))
    return out[:length]


# ------------------------------------------------------- differential drivers


def _prod_lru_order(cache: Cache, set_index: int) -> list[int]:
    # Deliberate white-box probe: the production set list *is* LRU->MRU order.
    return list(cache._sets[set_index])


def diff_cache(geometry: CacheGeometry, ops: Sequence[Op]) -> None:
    """Replay ``ops`` on the production Cache and RefCache in lockstep."""
    prod = Cache(geometry, "prod")
    ref = RefCache(geometry)
    for i, (kind, block) in enumerate(ops):
        tag = f"op #{i} {kind}({block})"
        if kind == "flush":
            prod.flush()
            ref.flush()
            continue
        got = getattr(prod, kind)(block)
        want = getattr(ref, kind)(block)
        if got != want:
            raise OracleError(f"{tag}: production returned {got!r}, reference {want!r}")
    for name in ("hits", "misses", "evictions"):
        got, want = getattr(prod, name), getattr(ref, name)
        if got != want:
            raise OracleError(f"cache {name}: production {got}, reference {want}")
    if prod.resident_blocks() != ref.resident_blocks():
        raise OracleError(
            f"resident sets differ: production {sorted(prod.resident_blocks())}, "
            f"reference {sorted(ref.resident_blocks())}"
        )
    for set_index in range(geometry.num_sets):
        got_order = _prod_lru_order(prod, set_index)
        want_order = ref.lru_order(set_index)
        if got_order != want_order:
            raise OracleError(
                f"set {set_index} LRU order differs: "
                f"production {got_order}, reference {want_order}"
            )


def diff_hierarchy(machine: MachineConfig, ops: Sequence[Op]) -> None:
    """Replay ``ops`` on MemoryHierarchy and RefHierarchy in lockstep.

    The clock advances one cycle per op plus each access's own stall, the
    same policy the interpreter uses; per-op stalls, final counters, prefetch
    classification and residency must all match.
    """
    prod = MemoryHierarchy(machine)
    ref = RefHierarchy(machine)
    now = 0
    for i, (kind, addr) in enumerate(ops):
        now += 1
        if kind == "access":
            got = prod.access(addr, now)
            want = ref.access(addr, now)
            if got != want:
                raise OracleError(
                    f"op #{i} access({addr:#x}) at cycle {now}: "
                    f"production stalled {got}, reference {want}"
                )
            now += got
        elif kind == "prefetch":
            prod.issue_prefetch(addr, now)
            ref.issue_prefetch(addr, now)
        elif kind == "flush":
            prod.flush(now)
            ref.flush(now)
        elif kind == "finalize":
            prod.finalize(now)
            ref.finalize(now)
        else:
            raise OracleError(f"unknown hierarchy op {kind!r}")
    prod.finalize(now)
    ref.finalize(now)
    prod_pf = (
        prod.prefetch.issued, prod.prefetch.redundant, prod.prefetch.useful,
        prod.prefetch.late, prod.prefetch.wasted,
    )
    if prod_pf != ref.prefetch.as_tuple():
        raise OracleError(
            "prefetch (issued, redundant, useful, late, wasted) differ: "
            f"production {prod_pf}, reference {ref.prefetch.as_tuple()}"
        )
    for level, prod_c, ref_c in (("L1", prod.l1, ref.l1), ("L2", prod.l2, ref.l2)):
        for name in ("hits", "misses", "evictions"):
            got, want = getattr(prod_c, name), getattr(ref_c, name)
            if got != want:
                raise OracleError(f"{level} {name}: production {got}, reference {want}")
        if prod_c.resident_blocks() != ref_c.resident_blocks():
            raise OracleError(f"{level} resident sets differ")
    if prod.demand_accesses != ref.demand_accesses:
        raise OracleError(
            f"demand accesses: production {prod.demand_accesses}, "
            f"reference {ref.demand_accesses}"
        )


def grammar_state_diff(got: dict, want: dict) -> str:
    """First observable difference between two grammar wire states, or ''."""
    if got == want:
        return ""
    for field in ("length", "next_rule_id", "start_id"):
        if got[field] != want[field]:
            return f"{field}: flat {got[field]}, reference {want[field]}"
    got_rules, want_rules = got["rules"], want["rules"]
    if [r[0] for r in got_rules] != [r[0] for r in want_rules]:
        return (
            f"rules insertion order: flat {[r[0] for r in got_rules]}, "
            f"reference {[r[0] for r in want_rules]}"
        )
    for (rid, grc, gbody), (_, wrc, wbody) in zip(got_rules, want_rules):
        if grc != wrc:
            return f"R{rid} refcount: flat {grc}, reference {wrc}"
        if gbody != wbody:
            return f"R{rid} body: flat {gbody}, reference {wbody}"
    if got["digrams"] != want["digrams"]:
        return (
            f"digram index (key, position) order: flat {got['digrams']}, "
            f"reference {want['digrams']}"
        )
    return "states differ in an unexpected field"


def diff_sequitur(tokens: Sequence[int]) -> None:
    """Build a grammar over ``tokens`` and verify it four independent ways.

    The flat production engine consumes the tokens as one batch; its
    structural self-check, a per-token linked :class:`RefSequitur`, and the
    brute-force grammar checker must all agree.  Flat-core invariant
    violations are re-raised as :class:`OracleError` so ddmin shrinking
    produces a 1-minimal reproducer for them too.
    """
    tokens = list(tokens)
    seq = Sequitur()
    seq.extend_batch(tokens)
    try:
        seq.verify_invariants()  # the production self-check first
    except AnalysisError as err:
        raise OracleError(f"flat-core invariant violated: {err}") from err
    ref = RefSequitur()
    for token in tokens:
        ref.append(token)
    delta = grammar_state_diff(seq.__getstate__(), ref.__getstate__())
    if delta:
        raise OracleError(f"flat grammar diverges from linked reference: {delta}")
    check_sequitur(seq, tokens)  # then the independent brute force
    if seq.expand() != ref_expand(seq):
        raise OracleError("Sequitur.expand() disagrees with the reference expander")
    lengths = seq.expansion_lengths()
    for rule_id, rule in seq.rules.items():
        want = len(ref_expand(seq, rule))
        if lengths[rule_id] != want:
            raise OracleError(
                f"expansion_lengths[R{rule_id}] = {lengths[rule_id]}, "
                f"reference expansion has {want} terminals"
            )


def diff_streams(trace: Sequence[int], config: AnalysisConfig) -> None:
    """Cross-check the fast analysis and both brute-force enumerators."""
    trace = list(trace)
    seq = Sequitur()
    seq.extend(trace)
    streams = find_hot_streams(seq, config)
    check_hot_streams(trace, config, streams)
    threshold = config.resolved_threshold(len(trace))
    ours = ref_hot_substrings(trace, threshold, config.min_length, config.max_length)
    prod = enumerate_hot_substrings(trace, threshold, config.min_length, config.max_length)
    if ours != prod:
        only_ours = set(ours) - set(prod)
        only_prod = set(prod) - set(ours)
        heat_diff = {k: (ours[k], prod[k]) for k in set(ours) & set(prod) if ours[k] != prod[k]}
        raise OracleError(
            "brute-force enumerators disagree: "
            f"only reference {sorted(only_ours)}, only production {sorted(only_prod)}, "
            f"heat mismatches {heat_diff}"
        )


# ----------------------------------------------------------------- shrinking


def shrink_ops(ops: Sequence[Op], still_fails: Callable[[list[Op]], bool]) -> list[Op]:
    """Delta-debug ``ops`` to a 1-minimal failing subsequence (ddmin).

    ``still_fails`` must return True for the input sequence.  The result
    still fails but removing any single element makes it pass.
    """
    current = list(ops)
    if not still_fails(current):
        raise OracleError("shrink_ops: the unshrunk sequence does not fail")
    granularity = 2
    while len(current) >= 2:
        chunk = math.ceil(len(current) / granularity)
        shrunk = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and still_fails(candidate):
                current = candidate
                shrunk = True
            else:
                start += chunk
        if shrunk:
            granularity = max(granularity - 1, 2)
        elif chunk <= 1:
            break  # 1-minimal: no single op can be removed
        else:
            granularity = min(len(current), granularity * 2)
    return current


def check_with_shrinking(
    ops: Sequence[Op],
    check: Callable[[Sequence[Op]], None],
    label: str,
) -> None:
    """Run ``check(ops)``; on failure, shrink and re-raise with the repro.

    The re-raised :class:`OracleError` carries the *minimal* sequence's error
    message plus the sequence itself as a Python literal, and chains the
    original (unshrunk) failure for context.
    """
    try:
        check(ops)
        return
    except OracleError as original:
        def fails(candidate: list[Op]) -> bool:
            try:
                check(candidate)
            except OracleError:
                return True
            return False

        minimal = shrink_ops(list(ops), fails)
        try:
            check(minimal)
        except OracleError as err:
            raise OracleError(
                f"{label}: {err}\n"
                f"minimal reproducer ({len(minimal)} of {len(ops)} ops):\n"
                f"  ops = {minimal!r}"
            ) from original
        raise OracleError(  # pragma: no cover - shrinker contract violation
            f"{label}: shrunk sequence unexpectedly passes; original: {original}"
        ) from original
