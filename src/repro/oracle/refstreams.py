"""O(n²) hot-data-stream enumerator and the conservativeness cross-check.

The paper defines a subsequence's regularity magnitude as ``heat = length *
frequency`` with *non-overlapping* occurrence counting (Section 2.3).  The
production analysis (:mod:`repro.analysis.hotstreams`) computes a
conservative approximation of this on the Sequitur grammar in linear time;
:func:`check_hot_streams` pins down the exact relationship on small traces:

* every stream the fast analysis reports respects the configured length /
  uniqueness / threshold bounds,
* its reported heat never exceeds the exact heat of its symbol sequence
  (conservativeness: ``coldUses`` undercounts true non-overlapping
  frequency, never overcounts), and therefore
* every reported stream is a member of the exact hot set enumerated here.

The converse does not hold — grammar compression can hide genuinely hot
substrings — so completeness is deliberately *not* asserted.

:func:`ref_hot_substrings` is written against the definition only; it shares
no code with :mod:`repro.analysis.exact` (the production test helper), which
lets the verify driver run the two brute-force implementations against each
other as well.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.hotstreams import AnalysisConfig
from repro.analysis.stream import HotDataStream
from repro.errors import OracleError


def ref_nonoverlapping_count(needle: Sequence[int], trace: Sequence[int]) -> int:
    """Greedy left-to-right non-overlapping occurrence count.

    Greedy counting is optimal for this objective: taking the earliest
    possible occurrence never blocks more later occurrences than it frees.
    """
    needle = tuple(needle)
    if not needle:
        raise OracleError("needle must be non-empty")
    trace = tuple(trace)
    count = 0
    i = 0
    end = len(trace) - len(needle)
    while i <= end:
        if trace[i : i + len(needle)] == needle:
            count += 1
            i += len(needle)
        else:
            i += 1
    return count


def ref_heat(needle: Sequence[int], trace: Sequence[int]) -> int:
    """Exact regularity magnitude: ``length * non-overlapping frequency``."""
    return len(needle) * ref_nonoverlapping_count(needle, trace)


def ref_hot_substrings(
    trace: Sequence[int],
    heat_threshold: int,
    min_length: int,
    max_length: int,
) -> dict[tuple[int, ...], int]:
    """Every distinct substring within the length bounds whose heat >= H.

    Quadratic in the trace length (each of O(n·L) candidate windows costs a
    linear scan); intended for traces of a few hundred symbols.
    """
    trace = tuple(trace)
    hot: dict[tuple[int, ...], int] = {}
    for length in range(min_length, min(max_length, len(trace)) + 1):
        for start in range(len(trace) - length + 1):
            candidate = trace[start : start + length]
            if candidate in hot:
                continue
            heat = length * ref_nonoverlapping_count(candidate, trace)
            if heat >= heat_threshold:
                hot[candidate] = heat
    return hot


def check_hot_streams(
    trace: Sequence[int],
    config: AnalysisConfig,
    streams: Sequence[HotDataStream],
) -> None:
    """Cross-check the fast analysis's output against the exact definition.

    ``streams`` is what :func:`repro.analysis.hotstreams.find_hot_streams`
    returned for a grammar built over ``trace``.  Raises
    :class:`OracleError` on any violated bound, non-conservative heat, or
    stream missing from the exact hot set.
    """
    trace = list(trace)
    threshold = config.resolved_threshold(len(trace))
    if config.max_streams is not None and len(streams) > config.max_streams:
        raise OracleError(
            f"{len(streams)} streams reported, max_streams={config.max_streams}"
        )
    heats = [s.heat for s in streams]
    if heats != sorted(heats, reverse=True):
        raise OracleError(f"streams not ranked hottest-first: {heats}")
    exact = ref_hot_substrings(trace, threshold, config.min_length, config.max_length)
    for stream in streams:
        tag = f"stream {stream.symbols!r} (rule R{stream.rule_id}, heat {stream.heat})"
        if not config.min_length <= stream.length <= config.max_length:
            raise OracleError(f"{tag}: length {stream.length} outside "
                              f"[{config.min_length}, {config.max_length}]")
        if stream.unique_refs <= config.min_unique:
            raise OracleError(
                f"{tag}: {stream.unique_refs} unique refs <= min_unique={config.min_unique}"
            )
        if stream.heat < threshold:
            raise OracleError(f"{tag}: heat below threshold H={threshold}")
        true_heat = ref_heat(stream.symbols, trace)
        if stream.heat > true_heat:
            raise OracleError(
                f"{tag}: reported heat exceeds exact heat {true_heat} "
                "(the grammar analysis must be conservative)"
            )
        if tuple(stream.symbols) not in exact:
            raise OracleError(f"{tag}: not in the exact hot set (H={threshold})")
