"""Metamorphic invariants: reusable whole-run correctness checkers.

Each checker takes finished run artifacts (or runs a workload itself) and
raises :class:`~repro.errors.OracleError` on violation.  The invariants are
the repo's headline claims, stated as executable checks:

* :func:`check_conservation` — counter bookkeeping is conserved: every
  issued prefetch meets exactly one fate, every demand access probes L1
  exactly once, only L1 misses probe L2, stalls fit inside cycles.
* :func:`check_architectural_state` — prefetching (and all the machinery
  around it) never changes *architectural* state: the optimized run returns
  the same value and leaves the identical simulated memory image as the
  unmodified binary.
* :func:`check_observer_effect` — telemetry at full sampling is
  cycle-identical and counter-identical to no telemetry.
* :func:`check_disabled_resilience_identical` — a fault plan with zero
  rates injects nothing and perturbs nothing, bit-for-bit.
* :func:`check_relabel_invariance` — cache behaviour depends only on block
  geometry, not absolute addresses: shifting a raw trace by a multiple of
  both levels' set strides reproduces identical stalls and counters.
* :func:`check_checkpoint_resume_identity` — a run killed after writing an
  architectural-state checkpoint and later resumed from it finishes
  bit-identical to an uninterrupted run.
* :func:`check_fastpath_identity` — the compiled execution kernel
  (``repro.fastpath``) produces the same counters, per-stream attribution
  and serialized result as the reference dispatch loop.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.bench.runner import RunResult, run_workload
from repro.core.config import OptimizerConfig
from repro.errors import OracleError
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.machine.hierarchy import MemoryHierarchy
from repro.resilience.faults import FaultPlan
from repro.telemetry.session import TelemetrySession
from repro.workloads.base import BuiltWorkload

#: A workload factory; called fresh per run because runs mutate memory.
WorkloadFactory = Callable[[], BuiltWorkload]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise OracleError(message)


def check_conservation(result: RunResult, sw_prefetch_only: bool = True) -> None:
    """Counter-conservation invariants on one finished run."""
    stats, hier = result.stats, result.hierarchy
    pf = hier.prefetch
    tag = f"{result.workload}/{result.level}"
    classified = pf.redundant + pf.useful + pf.late + pf.wasted
    _require(
        pf.issued == classified,
        f"{tag}: prefetch fates not conserved: issued {pf.issued} != "
        f"redundant {pf.redundant} + useful {pf.useful} + late {pf.late} "
        f"+ wasted {pf.wasted} (run must be finalized)",
    )
    _require(
        hier.demand_accesses == stats.memory_refs,
        f"{tag}: hierarchy saw {hier.demand_accesses} demand accesses, "
        f"interpreter performed {stats.memory_refs} memory refs",
    )
    _require(
        hier.l1.accesses == hier.demand_accesses,
        f"{tag}: L1 probed {hier.l1.accesses} times for "
        f"{hier.demand_accesses} demand accesses",
    )
    _require(
        hier.l2.accesses == hier.l1.misses,
        f"{tag}: L2 probed {hier.l2.accesses} times for {hier.l1.misses} L1 misses",
    )
    if sw_prefetch_only:
        _require(
            stats.prefetches_issued == pf.issued,
            f"{tag}: interpreter issued {stats.prefetches_issued} prefetches, "
            f"hierarchy counted {pf.issued}",
        )
    _require(
        stats.cycles >= stats.instructions,
        f"{tag}: {stats.cycles} cycles < {stats.instructions} instructions",
    )
    _require(
        stats.mem_stall_cycles <= stats.cycles,
        f"{tag}: stall cycles {stats.mem_stall_cycles} exceed total {stats.cycles}",
    )


_COMPARED_COUNTERS = (
    "cycles",
    "instructions",
    "memory_refs",
    "mem_stall_cycles",
    "checks_executed",
    "bursts",
    "traced_refs",
    "detect_cycles",
    "detects_executed",
    "prefetches_issued",
    "charged_cycles",
    "return_value",
)


def run_fingerprint(result: RunResult) -> dict[str, int]:
    fp = {name: getattr(result.stats, name) for name in _COMPARED_COUNTERS}
    hier = result.hierarchy
    for level_name, cache in (("l1", hier.l1), ("l2", hier.l2)):
        fp[f"{level_name}.hits"] = cache.hits
        fp[f"{level_name}.misses"] = cache.misses
        fp[f"{level_name}.evictions"] = cache.evictions
    pf = hier.prefetch
    fp.update(
        issued=pf.issued, redundant=pf.redundant, useful=pf.useful,
        late=pf.late, wasted=pf.wasted,
    )
    return fp


def _diff_fingerprints(a: dict[str, int], b: dict[str, int], context: str) -> None:
    drifted = {k: (a[k], b[k]) for k in a if a[k] != b[k]}
    if drifted:
        raise OracleError(f"{context}: runs diverged on {drifted}")


def check_observer_effect(
    factory: WorkloadFactory,
    level: str = "dyn",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
) -> None:
    """Telemetry at sampling period 1 must be bit-identical to none at all."""
    plain = run_workload(factory(), level, machine=machine, opt=opt)
    recorded = run_workload(
        factory(),
        level,
        machine=machine,
        opt=opt,
        telemetry=TelemetrySession.recording(miss_sample_every=1, prefetch_sample_every=1),
    )
    _diff_fingerprints(
        run_fingerprint(plain),
        run_fingerprint(recorded),
        f"observer effect ({plain.workload}/{level})",
    )


def check_tracing_observer_effect(
    factory: WorkloadFactory,
    level: str = "dyn",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
) -> None:
    """Span tracing + the prefetch ledger must not perturb the simulation.

    Runs with the full tracing stack armed (spans, lifecycle ledger, full
    sampling) and requires a bit-identical fingerprint, then holds the
    ledger to its own books: every fate count must reconcile exactly with
    the hierarchy's :class:`PrefetchStats`, aggregate and per stream.
    """
    from repro.telemetry.sinks import ListSink

    plain = run_workload(factory(), level, machine=machine, opt=opt)
    session = TelemetrySession(
        sinks=[ListSink()],
        miss_sample_every=1,
        prefetch_sample_every=1,
        tracing=True,
        track_prefetches=True,
    )
    traced = run_workload(factory(), level, machine=machine, opt=opt, telemetry=session)
    _diff_fingerprints(
        run_fingerprint(plain),
        run_fingerprint(traced),
        f"tracing observer effect ({plain.workload}/{level})",
    )
    mismatches = session.ledger.reconcile(traced.hierarchy.prefetch)
    per_stream = session.ledger.per_stream()
    for key, stats in per_stream.items():
        hier = traced.hierarchy.stream_stats.get(key)
        if hier is None:
            mismatches.append(f"ledger stream {key!r} unknown to the hierarchy")
            continue
        for attr in ("issued", "useful", "late"):
            if getattr(hier, attr) != getattr(stats, attr):
                mismatches.append(
                    f"stream {key!r} {attr}: ledger {getattr(stats, attr)} "
                    f"!= hierarchy {getattr(hier, attr)}"
                )
    _require(
        not mismatches,
        f"prefetch ledger out of balance ({plain.workload}/{level}): " + "; ".join(mismatches),
    )


def check_cache_replay_identity(spec=None) -> None:
    """A cached replay must be bit-identical to the live run it memoized.

    Runs ``spec`` (default: vortex/dyn, one pass) twice against a throwaway
    :class:`~repro.engine.cache.ResultStore`: the first simulates and stores,
    the second must replay — with an identical counter fingerprint *and* an
    identical full serialization (``to_dict``), which is the engine's license
    to substitute replays for simulations everywhere.
    """
    import tempfile

    from repro.engine.cache import ResultStore
    from repro.engine.executor import run_spec
    from repro.engine.spec import RunSpec

    spec = spec if spec is not None else RunSpec("vortex", "dyn", passes=1)
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        live = run_spec(spec, store=store)
        replay = run_spec(spec, store=store)
        context = f"cache replay ({spec.label})"
        _require(not live.from_cache, f"{context}: first run hit an empty cache")
        _require(replay.from_cache, f"{context}: second run missed the cache")
        _diff_fingerprints(run_fingerprint(live), run_fingerprint(replay), context)
        _require(
            live.to_dict() == replay.to_dict(),
            f"{context}: serialized results differ beyond the counter fingerprint",
        )


def check_checkpoint_resume_identity(spec=None) -> None:
    """A crash-resumed run must be bit-identical to an uninterrupted one.

    Drives ``spec`` (default: vortex/dyn, one pass) through the durable
    runner with a small checkpoint cadence and kills it (via the
    ``stop_after_checkpoints`` crash hook) after its first checkpoint; a
    second call must restore that checkpoint — proven by a
    ``CheckpointLoaded`` event — and finish with a counter fingerprint *and*
    full serialization (``to_dict``) identical to a straight-through run.
    This is the durability layer's license to substitute resumed runs for
    uninterrupted ones everywhere.
    """
    import tempfile
    from pathlib import Path

    from repro.durability.runner import run_spec_durable
    from repro.engine.executor import run_spec
    from repro.engine.spec import RunSpec
    from repro.telemetry.events import EventBus
    from repro.telemetry.sinks import ListSink

    spec = spec if spec is not None else RunSpec("vortex", "dyn", passes=1)
    context = f"checkpoint resume ({spec.label})"
    straight = run_spec(spec)
    events = ListSink()
    bus = EventBus()
    bus.attach(events)
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "run.ckpt"
        interrupted = run_spec_durable(
            spec, ckpt, checkpoint_every=60_000, bus=bus, stop_after_checkpoints=1
        )
        _require(interrupted is None, f"{context}: run finished before the simulated crash")
        _require(ckpt.is_file(), f"{context}: no checkpoint survived the simulated crash")
        resumed = run_spec_durable(spec, ckpt, checkpoint_every=60_000, bus=bus)
        _require(resumed is not None, f"{context}: resumed run did not finish")
        counts = events.counts()
        _require(
            counts.get("CheckpointLoaded", 0) >= 1,
            f"{context}: resume recomputed from scratch instead of loading "
            f"the checkpoint (events: {counts})",
        )
        _require(
            not ckpt.is_file(),
            f"{context}: checkpoint not removed after successful completion",
        )
    _diff_fingerprints(run_fingerprint(straight), run_fingerprint(resumed), context)
    _require(
        straight.to_dict() == resumed.to_dict(),
        f"{context}: serialized results differ beyond the counter fingerprint",
    )


def check_cycle_attribution(result: RunResult, machine: MachineConfig = PAPER_MACHINE) -> None:
    """Per-category cycle attribution must sum exactly to the cycle count."""
    from repro.tracing.attribution import CycleAttribution

    att = CycleAttribution.from_run(result.stats, machine)
    _require(
        att.conserved,
        f"cycle attribution not conserved ({result.workload}/{result.level}): "
        f"attributed {att.attributed} of {att.total} "
        f"(unattributed {att.unattributed}): {att.to_dict()}",
    )


def check_disabled_resilience_identical(
    factory: WorkloadFactory,
    level: str = "dyn",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
) -> None:
    """A zero-rate fault plan must not perturb the run in any way."""
    opt = opt if opt is not None else OptimizerConfig()
    inert = replace(opt, faults=FaultPlan(rate=0.0, record_corrupt_rate=0.0))
    baseline = run_workload(factory(), level, machine=machine, opt=opt)
    with_plan = run_workload(factory(), level, machine=machine, opt=inert)
    _require(
        with_plan.summary is None or with_plan.summary.faults_injected == 0,
        f"zero-rate fault plan injected {with_plan.summary.faults_injected} faults",
    )
    _diff_fingerprints(
        run_fingerprint(baseline),
        run_fingerprint(with_plan),
        f"inert fault plan ({baseline.workload}/{level})",
    )


def check_architectural_state(
    factory: WorkloadFactory,
    optimized_level: str = "dyn",
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
) -> None:
    """Prefetching must never change registers-as-observable or heap state.

    Runs the unmodified binary and the fully optimized pipeline on two fresh
    builds of the same workload and compares the entry procedure's return
    value and the complete final memory image, word for word.
    """
    orig_wl = factory()
    orig = run_workload(orig_wl, "orig", machine=machine, opt=opt)
    opt_wl = factory()
    optimized = run_workload(opt_wl, optimized_level, machine=machine, opt=opt)
    context = f"architectural state ({orig_wl.name}: orig vs {optimized_level})"
    _require(
        orig.stats.return_value == optimized.stats.return_value,
        f"{context}: return values differ: "
        f"{orig.stats.return_value} != {optimized.stats.return_value}",
    )
    words_a, words_b = orig_wl.memory._words, opt_wl.memory._words
    if words_a != words_b:
        changed = {
            addr: (words_a.get(addr, 0), words_b.get(addr, 0))
            for addr in set(words_a) | set(words_b)
            if words_a.get(addr, 0) != words_b.get(addr, 0)
        }
        sample = dict(sorted(changed.items())[:8])
        raise OracleError(
            f"{context}: {len(changed)} memory words differ, e.g. "
            + ", ".join(f"{a:#x}: {v}" for a, v in sample.items())
        )


def relabel_stride(machine: MachineConfig) -> int:
    """Smallest address shift guaranteed invisible to both cache levels.

    Both set counts are powers of two, so shifting every address by a
    multiple of ``max(sets) * block_bytes`` preserves each block's set index
    in L1 *and* L2 while keeping distinct blocks distinct.
    """
    max_sets = max(machine.l1.num_sets, machine.l2.num_sets)
    return max_sets * machine.block_bytes


def check_relabel_invariance(
    machine: MachineConfig,
    ops: Sequence[tuple[str, int]],
    multiples: Sequence[int] = (1, 7),
) -> None:
    """Replaying a raw op trace shifted by k * stride must be bit-identical.

    ``ops`` is a list of ``("access" | "prefetch" | "flush" | "finalize",
    addr)`` pairs; the cycle clock advances by each access's stall (plus one
    per op), like the interpreter's.
    """
    stride = relabel_stride(machine)

    def replay(offset: int) -> tuple[list[int], dict[str, int]]:
        hier = MemoryHierarchy(machine)
        now = 0
        stalls: list[int] = []
        for op, addr in ops:
            now += 1
            if op == "access":
                stall = hier.access(addr + offset, now)
                stalls.append(stall)
                now += stall
            elif op == "prefetch":
                hier.issue_prefetch(addr + offset, now)
            elif op == "flush":
                hier.flush(now)
            elif op == "finalize":
                hier.finalize(now)
            else:
                raise OracleError(f"unknown trace op {op!r}")
        hier.finalize(now)
        pf = hier.prefetch
        counters = {
            "l1.hits": hier.l1.hits, "l1.misses": hier.l1.misses,
            "l1.evictions": hier.l1.evictions, "l2.hits": hier.l2.hits,
            "l2.misses": hier.l2.misses, "l2.evictions": hier.l2.evictions,
            "issued": pf.issued, "redundant": pf.redundant, "useful": pf.useful,
            "late": pf.late, "wasted": pf.wasted,
        }
        return stalls, counters

    base_stalls, base_counters = replay(0)
    for k in multiples:
        stalls, counters = replay(k * stride)
        if stalls != base_stalls:
            i = next(i for i, (a, b) in enumerate(zip(base_stalls, stalls)) if a != b)
            raise OracleError(
                f"relabeling by {k}*{stride} changed stall #{i}: "
                f"{base_stalls[i]} -> {stalls[i]}"
            )
        _diff_fingerprints(base_counters, counters, f"relabeling by {k}*{stride}")


def check_tenancy_single_equivalence(
    workload: str = "vortex",
    level: str = "dyn",
    passes: Optional[int] = 1,
    quantum: int = 2048,
) -> None:
    """An N=1 tenancy co-run is bit-identical to the single-tenant path.

    Pinned headline claim of :mod:`repro.tenancy`: the scheduler's slicing,
    the shared hierarchy's per-tenant lanes and the tenant-scoped stats are
    all observationally invisible when there is nobody to share with.  The
    quantum is deliberately small so the run suspends/resumes many times;
    both sharing modes must agree with the plain ``run_workload`` result on
    the full serialized document — stats, hierarchy snapshot, per-stream
    attribution, optimizer summary and metrics.
    """
    from repro.tenancy import TenantPlan, TenantSpec, run_tenant_plan
    from repro.workloads import build_named

    single = run_workload(build_named(workload, passes=passes), level).to_dict()
    for sharing in ("shared", "private-l1"):
        plan = TenantPlan(
            tenants=(TenantSpec(workload, level, passes=passes),),
            quantum=quantum,
            sharing=sharing,
        )
        tenancy = run_tenant_plan(plan).as_single_run_result().to_dict()
        if tenancy != single:
            diff_keys = [k for k in single if tenancy.get(k) != single[k]]
            raise OracleError(
                f"N=1 tenancy ({sharing}, quantum={quantum}) diverged from the "
                f"single-tenant run for {workload}/{level}; differing keys: {diff_keys}"
            )


def check_tenancy_pollution_reconciliation(
    quantum: int = 1024,
    machine: Optional[MachineConfig] = None,
) -> None:
    """The pollution matrix reconciles exactly against eviction counts.

    Runs a two-tenant co-run (both at ``dyn``) on a deliberately small
    shared hierarchy, then checks the accounting identities on the
    *serialized* result: matrix total == prefetch-caused shared evictions,
    cause split sums to the shared caches' own eviction counters, tenant
    occupancies sum to the global clock — and that the check is not vacuous
    (the co-run really did evict shared lines via prefetches, in both
    sharing modes).
    """
    from repro.machine.config import CacheGeometry
    from repro.tenancy import TenantPlan, TenantSpec, run_tenant_plan
    from repro.tenancy.ablation import check_result

    if machine is None:
        machine = MachineConfig(
            l1=CacheGeometry(512, 2),
            l2=CacheGeometry(4096, 4),
            l2_latency=10,
            memory_latency=100,
        )
    tenants = (
        TenantSpec("vortex", "dyn", passes=1),
        TenantSpec("vpr", "dyn", passes=1),
    )
    for sharing in ("shared", "private-l1"):
        plan = TenantPlan(
            tenants=tenants, quantum=quantum, sharing=sharing, machine=machine
        )
        result = run_tenant_plan(plan)
        problems = check_result(result)
        if problems:
            raise OracleError(
                f"tenancy accounting failed to reconcile ({sharing}): "
                + "; ".join(problems)
            )
        _require(
            result.prefetch_shared_evictions > 0,
            f"pollution reconciliation is vacuous ({sharing}): the co-run "
            "caused no prefetch-triggered shared evictions",
        )
        _require(
            result.pollution.suffered_by(0) + result.pollution.suffered_by(1) > 0,
            f"pollution reconciliation is vacuous ({sharing}): no cross-tenant "
            "evictions occurred",
        )


def check_fastpath_identity(spec=None) -> None:
    """A compiled-fastpath run must be bit-identical to the reference run.

    Executes ``spec`` (default: vortex/dyn, one pass) twice on freshly built
    workloads — once forcing the reference dispatch loop (``fast=False``),
    once forcing the compiled kernel (``fast=True``), both bypassing the
    result store so neither leg can be satisfied by a replay — and requires
    an identical counter fingerprint, identical per-stream prefetch
    attribution, and an identical full serialization (``to_dict``).  This is
    ``repro.fastpath``'s license to substitute compiled execution for the
    reference interpreter everywhere.
    """
    from repro.engine.levels import execute_workload
    from repro.engine.spec import RunSpec

    spec = spec if spec is not None else RunSpec("vortex", "dyn", passes=1)
    context = f"fastpath identity ({spec.label})"
    reference = execute_workload(spec.build(), spec.level, spec.machine, spec.opt, fast=False)
    compiled = execute_workload(spec.build(), spec.level, spec.machine, spec.opt, fast=True)
    _diff_fingerprints(run_fingerprint(reference), run_fingerprint(compiled), context)

    def streams(result):
        return {
            key: (s.issued, s.useful, s.late, s.wasted, s.redundant)
            for key, s in result.hierarchy.stream_stats.items()
        }

    _require(
        streams(reference) == streams(compiled),
        f"{context}: per-stream prefetch attribution diverged "
        f"({streams(reference)} != {streams(compiled)})",
    )
    _require(
        reference.to_dict() == compiled.to_dict(),
        f"{context}: serialized results differ beyond the counter fingerprint",
    )


class _SummaryProbe:
    """Minimal sink that captures the run-summary docs the engine publishes."""

    def __init__(self) -> None:
        self.docs: list[dict] = []

    def handle(self, event) -> None:
        pass

    def note_run_summary(self, doc: dict) -> None:
        self.docs.append(doc)


def check_streaming_trace_identity(spec=None) -> None:
    """Streamed chunked export must be byte-identical to buffered export.

    Runs ``spec`` (default: vortex/dyn, one pass) once with the full export
    stack attached — buffered JSONL sink, in-memory sink and the chunked
    :class:`~repro.obs.stream.StreamingTraceSink` with a deliberately tiny
    chunk bound so many seals occur — and requires:

    * zero observer effect: the instrumented run is fingerprint-identical
      to a plain run of the same spec;
    * the concatenated sealed chunks are byte-identical to the buffered
      JSONL file;
    * a Chrome trace merged from the chunk directory is byte-identical to
      one written by the buffered exporter from the live event list;
    * the Perfetto sidecar parses to a nonzero packet count.
    """
    import tempfile
    from pathlib import Path

    from repro.engine.spec import RunSpec
    from repro.obs.chunks import load_chunk_events
    from repro.obs.perfetto import parse_packet_count
    from repro.obs.stream import PFTRACE_NAME, StreamingTraceSink, split_runs
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.sinks import JsonlSink, ListSink

    spec = spec if spec is not None else RunSpec("vortex", "dyn", passes=1)
    context = f"streaming trace identity ({spec.label})"
    plain = run_workload(spec.build(), spec.level, machine=spec.machine, opt=spec.opt)
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        chunk_dir = tmp / "chunks"
        buffered_path = tmp / "buffered.jsonl"
        events = ListSink()
        probe = _SummaryProbe()
        jsonl = JsonlSink(buffered_path, flush_every=64)
        stream = StreamingTraceSink(chunk_dir, max_bytes=1 << 14)
        session = TelemetrySession(
            sinks=[events, probe, jsonl, stream],
            miss_sample_every=1,
            prefetch_sample_every=1,
            tracing=True,
            proc_attribution=True,
        )
        streamed = run_workload(
            spec.build(), spec.level, machine=spec.machine, opt=spec.opt, telemetry=session
        )
        jsonl.close()
        stream.close()
        _diff_fingerprints(run_fingerprint(plain), run_fingerprint(streamed), context)

        load_events, load = load_chunk_events(chunk_dir)
        _require(load.complete and load.ok, f"{context}: chunk load incomplete ({load.notes})")
        chunk_bytes = b"".join(
            path.read_bytes() for path in sorted(chunk_dir.glob("chunk-*.jsonl"))
        )
        _require(
            chunk_bytes == buffered_path.read_bytes(),
            f"{context}: concatenated chunks differ from the buffered JSONL "
            f"({len(chunk_bytes)} vs {buffered_path.stat().st_size} bytes)",
        )

        label = f"{streamed.workload}/{streamed.level}"
        buffered_trace = tmp / "buffered.json"
        merged_trace = tmp / "merged.json"
        write_chrome_trace([(label, events.events)], buffered_trace, summaries=probe.docs)
        write_chrome_trace(split_runs(load_events), merged_trace, summaries=load.summaries)
        _require(
            buffered_trace.read_bytes() == merged_trace.read_bytes(),
            f"{context}: chunk-merged Chrome trace differs from the buffered render",
        )

        packets = parse_packet_count((chunk_dir / PFTRACE_NAME).read_bytes())
        _require(packets > 0, f"{context}: Perfetto sidecar parsed to zero packets")


def check_proc_attribution(spec=None, machine: MachineConfig = PAPER_MACHINE) -> None:
    """Per-procedure attribution must sum exactly to the 7-category totals.

    Runs ``spec`` (default: vortex/dyn, one pass) with per-procedure
    recording on, through the reference interpreter and the compiled
    fastpath kernel, and requires:

    * per-procedure category columns sum exactly to the run's
      :class:`~repro.tracing.attribution.CycleAttribution` categories (the
      conservation-checked Figure 11 split gains a procedure dimension
      without losing a cycle);
    * reference and compiled execution produce identical per-procedure rows.
    """
    from repro.engine.levels import execute_workload
    from repro.engine.spec import RunSpec
    from repro.telemetry.sinks import ListSink
    from repro.tracing.attribution import CycleAttribution, ProcAttribution

    spec = spec if spec is not None else RunSpec("vortex", "dyn", passes=1)
    context = f"proc attribution ({spec.label})"

    def run(fast: bool):
        session = TelemetrySession(sinks=[ListSink()], proc_attribution=True)
        result = execute_workload(
            spec.build(), spec.level, spec.machine, spec.opt, telemetry=session, fast=fast
        )
        _require(
            session.proc_attr is not None,
            f"{context}: session recorded no per-procedure attribution",
        )
        return result, ProcAttribution.from_recorder(session.proc_attr, spec.machine)

    reference, ref_rows = run(fast=False)
    _compiled, fast_rows = run(fast=True)
    totals = CycleAttribution.from_run(reference.stats, spec.machine).to_dict()
    summed = ref_rows.totals()
    _require(
        summed == totals,
        f"{context}: per-procedure sums diverge from the run attribution "
        f"({summed} != {totals})",
    )
    _require(
        ref_rows.to_dict() == fast_rows.to_dict(),
        f"{context}: reference and fastpath per-procedure rows differ",
    )
