"""Brute-force Sequitur checker: expand the grammar, re-derive the invariants.

The production :class:`~repro.sequitur.sequitur.Sequitur` maintains digram
uniqueness and rule utility *incrementally*, with a digram index, refcounts
and an overlapping-triple repair in ``_join`` — exactly the machinery most
likely to harbour subtle bugs.  This checker trusts none of it: it walks the
finished grammar through the public ``rhs()`` view only and re-derives every
claim from scratch:

* the start rule's terminal expansion reproduces the input exactly;
* no digram occurs twice anywhere in the grammar (occurrences are allowed to
  repeat only as an *overlapping run*, e.g. the two ``aa`` digrams inside
  ``aaa`` — the same exemption the incremental algorithm makes);
* every non-start rule is referenced at least twice, has at least two body
  symbols, and its stored refcount matches a brute-force reference count;
* every rule is reachable from the start rule and expansion terminates
  (the rule DAG is acyclic).

Any violation raises :class:`~repro.errors.OracleError` with a rendering of
the offending grammar.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OracleError
from repro.sequitur.grammar import Rule
from repro.sequitur.sequitur import Sequitur

#: Digram key: terminals as ("t", value), non-terminals as ("r", rule id).
Key = tuple[str, int]


def _keys(rule: Rule) -> list[Key]:
    return [
        ("r", value.id) if isinstance(value, Rule) else ("t", value)
        for value in rule.rhs()
    ]


def ref_expand(seq: Sequitur, rule: Rule | None = None) -> list[int]:
    """Terminal expansion via the public rhs() view, cycle-checked.

    Independent of :meth:`Sequitur.expand`; a cyclic rule reference (which a
    correct Sequitur can never produce) raises instead of recursing forever.
    """
    if rule is None:
        rule = seq.start
    out: list[int] = []
    in_progress: set[int] = set()

    def walk(r: Rule) -> None:
        if r.id in in_progress:
            raise OracleError(f"rule R{r.id} participates in a reference cycle")
        in_progress.add(r.id)
        for value in r.rhs():
            if isinstance(value, Rule):
                walk(value)
            else:
                out.append(value)
        in_progress.discard(r.id)

    walk(rule)
    return out


def check_sequitur(seq: Sequitur, tokens: Sequence[int]) -> None:
    """Assert the grammar represents ``tokens`` and satisfies both invariants.

    Raises :class:`OracleError` on the first violation found.
    """
    tokens = list(tokens)

    def fail(message: str) -> None:
        raise OracleError(f"{message}\n--- grammar ---\n{seq.to_text()}")

    if seq.length != len(tokens):
        fail(f"grammar length {seq.length} != input length {len(tokens)}")
    expansion = ref_expand(seq)
    if expansion != tokens:
        fail(
            "expansion does not reproduce the input: "
            f"first divergence at {_first_divergence(expansion, tokens)}"
        )

    # Digram uniqueness, brute force over every rule body.
    occurrences: dict[tuple[Key, Key], list[tuple[int, int]]] = {}
    for rule_id, rule in seq.rules.items():
        keys = _keys(rule)
        if rule is not seq.start and len(keys) < 2:
            fail(f"rule R{rule_id} has a body of {len(keys)} symbols (< 2)")
        for pos in range(len(keys) - 1):
            occurrences.setdefault((keys[pos], keys[pos + 1]), []).append((rule_id, pos))
    for digram, places in occurrences.items():
        places.sort()
        for prev, cur in zip(places, places[1:]):
            # Overlapping runs (aaa...) repeat the digram at adjacent
            # positions of one rule; anything else is a uniqueness violation.
            if cur != (prev[0], prev[1] + 1):
                fail(f"digram {digram} occurs at both {prev} and {cur}")

    # Rule utility + refcount agreement + reachability.
    ref_counts: dict[int, int] = {rule_id: 0 for rule_id in seq.rules}
    for rule in seq.rules.values():
        for value in rule.rhs():
            if isinstance(value, Rule):
                if value.id not in seq.rules:
                    fail(f"rule R{rule.id} references deleted rule R{value.id}")
                ref_counts[value.id] += 1
    for rule_id, count in ref_counts.items():
        rule = seq.rules[rule_id]
        if rule is seq.start:
            if count:
                fail(f"start rule is referenced {count} times")
            continue
        if count < 2:
            fail(f"rule utility violated: R{rule_id} referenced {count} time(s)")
        if count != rule.refcount:
            fail(f"R{rule_id} stores refcount {rule.refcount}, actual {count}")

    reachable: set[int] = set()
    frontier = [seq.start]
    while frontier:
        rule = frontier.pop()
        if rule.id in reachable:
            continue
        reachable.add(rule.id)
        frontier.extend(v for v in rule.rhs() if isinstance(v, Rule))
    unreachable = set(seq.rules) - reachable
    if unreachable:
        fail(f"rules unreachable from start: {sorted(unreachable)}")


def _first_divergence(a: Sequence[int], b: Sequence[int]) -> str:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"index {i}: expansion {x} != input {y}"
    return f"length {len(a)} vs {len(b)}"
