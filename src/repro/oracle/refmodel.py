"""Reference memory-system models: deliberately simple, independently written.

These re-implement the *specification* of :mod:`repro.machine` — a
set-associative LRU cache and the two-level hierarchy with in-flight software
prefetches — from the documented behaviour, not from the production code.
Where the production :class:`~repro.machine.cache.Cache` keeps each set as a
Python list in use order, the reference keeps a per-set ``{block: stamp}``
dict and evicts the minimum stamp; where the production hierarchy inlines
telemetry sampling and stream attribution into its hot paths, the reference
has neither.  The two implementations therefore share no code and very little
structure, which is what makes their agreement on randomized traces evidence
of correctness rather than of common ancestry.

The observable contract both sides must satisfy:

* LRU within each set; a lookup hit or re-install promotes to MRU.
* ``lookup`` never installs; ``install`` evicts the LRU block of a full set.
* Inclusion: an L2 eviction drops the L1 copy (without counting an L1
  eviction).
* A prefetch installs its block in both levels immediately (pollution) and
  becomes *ready* after the fill latency; a demand access before readiness
  pays the residual and classifies the prefetch ``late``.
* A prefetched block's first demand use classifies it ``useful``/``late``;
  leaving the hierarchy unused classifies it ``wasted``; prefetching an
  L1-resident or in-flight block is ``redundant``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.config import CacheGeometry, MachineConfig


@dataclass
class RefPrefetchStats:
    """Reference-side prefetch outcome counters (mirrors the production set)."""

    issued: int = 0
    redundant: int = 0
    useful: int = 0
    late: int = 0
    wasted: int = 0

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.issued, self.redundant, self.useful, self.late, self.wasted)


class RefCache:
    """One level of set-associative LRU cache, stamp-ordered.

    Each set maps resident block numbers to the stamp of their last use; the
    LRU victim is simply the minimum stamp.  Sets are tiny, so the linear
    ``min`` scan is fine for a reference model.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: list[dict[int, int]] = [dict() for _ in range(geometry.num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _tick(self) -> int:
        self._stamp += 1
        return self._stamp

    def _set_for(self, block: int) -> dict[int, int]:
        return self._sets[block % self.geometry.num_sets]

    def lookup(self, block: int) -> bool:
        """Demand probe: counts a hit or miss, promotes a hit to MRU."""
        bucket = self._set_for(block)
        if block in bucket:
            bucket[block] = self._tick()
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Silent membership probe (no promotion, no counters)."""
        return block in self._set_for(block)

    def install(self, block: int) -> int | None:
        """Fill ``block`` as MRU; return the evicted block, if any."""
        bucket = self._set_for(block)
        if block in bucket:
            bucket[block] = self._tick()
            return None
        victim: int | None = None
        if len(bucket) >= self.geometry.associativity:
            victim = min(bucket, key=bucket.__getitem__)
            del bucket[victim]
            self.evictions += 1
        bucket[block] = self._tick()
        return victim

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` without counting an eviction."""
        bucket = self._set_for(block)
        if block in bucket:
            del bucket[block]
            return True
        return False

    def flush(self) -> None:
        for bucket in self._sets:
            bucket.clear()

    def resident_blocks(self) -> set[int]:
        resident: set[int] = set()
        for bucket in self._sets:
            resident.update(bucket)
        return resident

    def lru_order(self, set_index: int) -> list[int]:
        """Blocks of one set, least- to most-recently used."""
        bucket = self._sets[set_index]
        return sorted(bucket, key=bucket.__getitem__)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


@dataclass
class RefHierarchy:
    """Two-level reference hierarchy with the in-flight prefetch model."""

    config: MachineConfig
    l1: RefCache = field(init=False)
    l2: RefCache = field(init=False)

    def __post_init__(self) -> None:
        self.l1 = RefCache(self.config.l1)
        self.l2 = RefCache(self.config.l2)
        self._shift = self.config.block_bytes.bit_length() - 1
        self._ready_at: dict[int, int] = {}
        self._unused_prefetches: set[int] = set()
        self.prefetch = RefPrefetchStats()
        self.demand_accesses = 0

    def block_of(self, addr: int) -> int:
        return addr >> self._shift

    def access(self, addr: int, now: int) -> int:
        """Demand access; returns the stall in cycles."""
        self.demand_accesses += 1
        block = addr >> self._shift
        stall = 0
        if block in self._ready_at:
            ready = self._ready_at.pop(block)
            if ready > now:
                # Data still in flight: pay the residual and classify late.
                stall = ready - now
                self.prefetch.late += 1
                self._unused_prefetches.discard(block)
        if self.l1.lookup(block):
            if block in self._unused_prefetches:
                self._unused_prefetches.discard(block)
                self.prefetch.useful += 1
            return stall
        if self.l2.lookup(block):
            stall += self.config.l2_latency
            if block in self._unused_prefetches:
                self._unused_prefetches.discard(block)
                self.prefetch.useful += 1
        else:
            stall += self.config.memory_latency
            self._fill_l2(block)
        self._fill_l1(block)
        return stall

    def issue_prefetch(self, addr: int, now: int) -> None:
        """Software prefetch: immediate install, ready after the fill latency."""
        self.prefetch.issued += 1
        block = addr >> self._shift
        if self.l1.contains(block) or block in self._ready_at:
            self.prefetch.redundant += 1
            return
        if self.l2.contains(block):
            self._ready_at[block] = now + self.config.l2_latency
        else:
            self._ready_at[block] = now + self.config.memory_latency
            self._fill_l2(block)
        self._fill_l1(block)
        self._unused_prefetches.add(block)

    def _fill_l1(self, block: int) -> None:
        victim = self.l1.install(block)
        if victim is not None and victim in self._unused_prefetches:
            # Only pollution if the block is gone from the whole hierarchy.
            if not self.l2.contains(victim):
                self._unused_prefetches.discard(victim)
                self._ready_at.pop(victim, None)
                self.prefetch.wasted += 1

    def _fill_l2(self, block: int) -> None:
        victim = self.l2.install(block)
        if victim is not None:
            self.l1.invalidate(victim)
            if victim in self._unused_prefetches:
                self._unused_prefetches.discard(victim)
                self._ready_at.pop(victim, None)
                self.prefetch.wasted += 1

    def finalize(self, now: int = 0) -> None:
        self.prefetch.wasted += len(self._unused_prefetches)
        self._unused_prefetches.clear()
        self._ready_at.clear()

    def flush(self, now: int = 0) -> None:
        self.prefetch.wasted += len(self._unused_prefetches)
        self._unused_prefetches.clear()
        self._ready_at.clear()
        self.l1.flush()
        self.l2.flush()
