"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the run-level, *exact* companion to the event stream: events
may be sampled (``CacheMiss``) but the registry is reconciled against the
authoritative simulation counters (:class:`~repro.interp.interpreter.ExecStats`,
:class:`~repro.machine.cache.Cache` hit/miss counts,
:class:`~repro.core.stats.OptimizerSummary`) when a run finalizes, so
telemetry consumers never see drift.

Gauges remember the simulated cycle of their last update ("keyed by simulated
cycle"), histograms use fixed bucket upper bounds chosen at creation — stream
length, prefetch lead-time and DFSM size defaults are provided — and
everything serializes through :meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigError

#: Default bucket upper bounds (values above the last bound land in +Inf).
STREAM_LENGTH_BUCKETS = (2, 4, 8, 16, 32, 64, 128, 256)
LEAD_TIME_BUCKETS = (0, 10, 25, 50, 100, 250, 500, 1000, 2500)
DFSM_SIZE_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


@dataclass
class Counter:
    """Monotonic integer counter."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """Last-value metric stamped with the simulated cycle of the update."""

    name: str
    value: float = 0.0
    cycle: int = -1

    def set(self, value: float, cycle: int = -1) -> None:
        self.value = value
        self.cycle = cycle


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bucket."""

    def __init__(self, name: str, bounds: tuple[int, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(f"histogram {name!r} needs sorted, non-empty bounds")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times."""
        self.counts[bisect.bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += int(value) * n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: tuple[int, ...] | None = None) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            if bounds is None:
                raise ConfigError(f"histogram {name!r} does not exist; pass bounds to create it")
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    # ---------------------------------------------------------- convenience

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_counter(self, name: str, value: int) -> None:
        self.counter(name).value = value

    def set_gauge(self, name: str, value: float, cycle: int = -1) -> None:
        self.gauge(name).set(value, cycle)

    def observe(self, name: str, value: float, bounds: tuple[int, ...] | None = None) -> None:
        self.histogram(name, bounds).observe(value)

    # --------------------------------------------------------- serialization

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable view of every metric (sorted for stable diffs)."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {
                name: {"value": g.value, "cycle": g.cycle}
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {name: h.snapshot() for name, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_snapshot(cls, data: dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` document.

        Exact inverse: ``from_snapshot(snapshot()).snapshot() == snapshot()``,
        which is what lets a cached :class:`~repro.engine.result.RunResult`
        carry the same metrics a live run would.
        """
        reg = cls()
        for name, value in data.get("counters", {}).items():
            reg.set_counter(str(name), int(value))
        for name, payload in data.get("gauges", {}).items():
            reg.set_gauge(str(name), float(payload["value"]), int(payload["cycle"]))
        for name, payload in data.get("histograms", {}).items():
            hist = reg.histogram(str(name), tuple(int(b) for b in payload["bounds"]))
            hist.counts = [int(c) for c in payload["counts"]]
            hist.count = int(payload["count"])
            hist.total = int(payload["total"])
        return reg
