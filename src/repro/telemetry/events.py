"""Typed telemetry events and the event bus.

Every observable moment of a simulated run is a frozen dataclass carrying the
simulated ``cycle`` it happened at plus a handful of payload fields.  Events
are *descriptive only*: emitting one never charges simulated cycles, so a run
with telemetry enabled is cycle-for-cycle identical to one without (the
observer-effect tests pin this down).

The :class:`EventBus` is the single dispatch point.  Instrumented components
hold a bus-like object (``.enabled`` / ``.emit``) that defaults to the
module-level :data:`~repro.telemetry.sinks.NULL_SINK`; the hot interpreter
loop therefore pays exactly one attribute check per potential emission site
when telemetry is off.

Event classes register themselves in :data:`EVENT_TYPES` keyed by class name,
which is also the ``kind`` discriminator used by the JSONL exporter; a record
round-trips through :meth:`Event.to_record` / :func:`from_record`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from repro.errors import ConfigError

#: kind -> event class, populated by ``Event.__init_subclass__``.
EVENT_TYPES: dict[str, type["Event"]] = {}


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: every event is stamped with the simulated cycle."""

    cycle: int

    #: Discriminator used by exporters; equals the class name.
    kind: ClassVar[str] = "Event"

    def __init_subclass__(cls, **kwargs: object) -> None:
        # No zero-arg super(): @dataclass(slots=True) recreates the class, so
        # the implicit __class__ cell would point at the pre-slots original.
        object.__init_subclass__(**kwargs)
        cls.kind = cls.__name__
        EVENT_TYPES[cls.__name__] = cls

    def to_record(self) -> dict[str, object]:
        """Flat JSON-serializable dict, ``kind`` first."""
        names = type(self).__dict__.get("_frozen_field_names")
        if names is None:
            names = tuple(f.name for f in fields(self))
            type(self)._frozen_field_names = names  # type: ignore[attr-defined]
        record: dict[str, object] = {"kind": self.kind}
        for name in names:
            record[name] = getattr(self, name)
        return record


def from_record(record: dict[str, object]) -> Event:
    """Inverse of :meth:`Event.to_record`."""
    data = dict(record)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(str(kind))
    if cls is None:
        raise ConfigError(f"unknown telemetry event kind {kind!r}")
    try:
        return cls(**data)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ConfigError(f"malformed {kind} record: {exc}") from exc


# ------------------------------------------------------------ run life cycle


@dataclass(frozen=True, slots=True)
class RunBegin(Event):
    """A (workload, level) execution started."""

    workload: str
    level: str


@dataclass(frozen=True, slots=True)
class RunEnd(Event):
    """Execution finished; ``cycle`` is the final simulated cycle count."""

    instructions: int
    bursts: int


# --------------------------------------------------- bursty tracing (Fig. 2)


@dataclass(frozen=True, slots=True)
class BurstBegin(Event):
    """The counter machine switched to the instrumented version."""


@dataclass(frozen=True, slots=True)
class BurstEnd(Event):
    """The counter machine returned to the checking version."""

    index: int


# ------------------------------------------------------ simulator span tree


@dataclass(frozen=True, slots=True)
class SpanBegin(Event):
    """A causal span opened (run / optimizer epoch / analysis / ...).

    Spans trace the *simulator's* own activity on the simulated-cycle
    timeline (:mod:`repro.tracing`), as opposed to the profiling events,
    which describe the subject program.  ``span_id`` is unique within a
    session; ``parent_id`` is 0 for root spans.  ``category`` is one of the
    :data:`repro.tracing.spans.SPAN_CATEGORIES` taxonomy tags.
    """

    span_id: int
    parent_id: int
    name: str
    category: str
    detail: str


@dataclass(frozen=True, slots=True)
class SpanEnd(Event):
    """The span opened by the matching :class:`SpanBegin` closed."""

    span_id: int


# ------------------------------------------------ optimizer phases (Fig. 1)


@dataclass(frozen=True, slots=True)
class PhaseTransition(Event):
    """The optimizer moved between awake and hibernating."""

    previous: str
    phase: str


@dataclass(frozen=True, slots=True)
class AnalysisCharged(Event):
    """Online analysis billed ``charged_cycles`` to simulated time."""

    traced_refs: int
    charged_cycles: int


@dataclass(frozen=True, slots=True)
class OptimizeCycle(Event):
    """One profile -> analyze -> optimize cycle completed (a Table 2 row)."""

    index: int
    traced_refs: int
    num_streams: int
    dfsm_states: int
    dfsm_transitions: int
    injected_checks: int
    procs_modified: int


@dataclass(frozen=True, slots=True)
class DfsmBuilt(Event):
    """The joint prefix-match DFSM was (re)built."""

    states: int
    transitions: int
    streams: int


@dataclass(frozen=True, slots=True)
class DfsmBackoff(Event):
    """DFSM construction blew past the state cap; the stream set was halved."""

    streams_before: int
    streams_after: int


# ------------------------------------------------- resilience (watchdog etc.)


@dataclass(frozen=True, slots=True)
class GuardRejected(Event):
    """A candidate stream failed pre-install validation and was quarantined.

    ``reason`` is one of the ``repro.resilience.guards.REASON_*`` tags;
    ``stream`` is a short human-readable rendering of the stream identity.
    """

    reason: str
    stream: str
    length: int
    heat: int


@dataclass(frozen=True, slots=True)
class StreamDeoptimized(Event):
    """The watchdog rolled back one installed stream.

    ``remaining`` counts the streams still installed after the targeted
    rollback; 0 means the optimizer fully deoptimized and re-entered
    profiling.
    """

    stream: str
    reason: str
    accuracy: float
    pollution: float
    samples: int
    remaining: int


@dataclass(frozen=True, slots=True)
class FaultInjected(Event):
    """The fault-injection harness fired one planned fault."""

    fault: str
    detail: str


@dataclass(frozen=True, slots=True)
class OptimizerError(Event):
    """An analyze/optimize failure was contained (typed ``ReproError``).

    The optimizer deoptimized, entered hibernation and will retry at the
    next awake phase — unless ``disabled`` is set, in which case it has
    exhausted its error budget and sleeps for the rest of the run.
    """

    phase: str
    error: str
    message: str
    consecutive: int
    disabled: bool


# -------------------------------------------------------- memory hierarchy


@dataclass(frozen=True, slots=True)
class PrefetchIssued(Event):
    """A software or hardware prefetch was issued for ``block``."""

    block: int
    source: str
    redundant: bool


@dataclass(frozen=True, slots=True)
class PrefetchUsed(Event):
    """A demand access consumed a prefetched block.

    ``lead`` is the issue-to-use distance in cycles; ``late`` marks arrivals
    after the demand access (the residual-stall case).
    """

    block: int
    late: bool
    lead: int


@dataclass(frozen=True, slots=True)
class PrefetchEvicted(Event):
    """A prefetched block left the hierarchy without serving a demand access
    (pollution); ``at_finalize`` marks end-of-run classification."""

    block: int
    at_finalize: bool


@dataclass(frozen=True, slots=True)
class CacheMiss(Event):
    """A sampled demand miss; ``level`` is the deepest level that missed
    ("L1" = filled from L2, "L2" = filled from memory)."""

    level: str
    block: int
    stall: int


@dataclass(frozen=True, slots=True)
class CacheFlushed(Event):
    """Both cache levels were emptied (counters are preserved)."""

    l1_blocks: int
    l2_blocks: int


@dataclass(frozen=True, slots=True)
class RecordSkipped(Event):
    """A loader skipped one unreadable line of an event log.

    Synthesized by :func:`repro.telemetry.export.load_events_jsonl` in
    non-strict mode, never emitted by a simulation (``cycle`` is always 0).
    ``line_no`` is 1-based; ``snippet`` holds a truncated copy of the bad
    line so the original file is not needed to diagnose it.
    """

    line_no: int
    reason: str
    snippet: str


# ------------------------------------------------- experiment engine (cache)


@dataclass(frozen=True, slots=True)
class ResultCacheHit(Event):
    """The result cache served a run without simulating (``cycle`` is 0).

    Emitted by :class:`repro.engine.cache.ResultStore` on its own bus —
    engine events happen *around* runs, not inside them, so they never
    appear in a run's event log.
    """

    workload: str
    level: str
    fingerprint: str


@dataclass(frozen=True, slots=True)
class ResultCacheMiss(Event):
    """No cache entry for a spec's fingerprint; the run will simulate."""

    workload: str
    level: str
    fingerprint: str


@dataclass(frozen=True, slots=True)
class ResultCacheStored(Event):
    """A fresh run's serialized result was written to the cache."""

    workload: str
    level: str
    fingerprint: str
    bytes_written: int


@dataclass(frozen=True, slots=True)
class ResultCacheEvicted(Event):
    """``cache gc`` removed an entry (``reason`` is ``age`` or ``size``)."""

    fingerprint: str
    reason: str
    bytes_freed: int


# --------------------------------------------- durability (repro.durability)
# Engine-level events (``cycle`` is always 0): they describe what happened
# *around* simulated runs — checkpoints, the supervised executor's recovery
# paths and the chaos harness — never inside one, so a run's own event log
# stays byte-identical whether or not it executed under supervision.


@dataclass(frozen=True, slots=True)
class CheckpointSaved(Event):
    """A mid-run architectural-state checkpoint was written (fsync'd)."""

    workload: str
    level: str
    path: str
    icount: int
    bytes_written: int


@dataclass(frozen=True, slots=True)
class CheckpointLoaded(Event):
    """A run resumed from an integrity-verified checkpoint."""

    workload: str
    level: str
    path: str
    icount: int


@dataclass(frozen=True, slots=True)
class CheckpointRejected(Event):
    """A checkpoint failed validation and was discarded (recompute-from-start).

    ``reason`` names the failed gate: ``format`` (version bump), ``digest``
    (payload hash mismatch), ``truncated``, ``fingerprint`` (spec or code
    changed since it was taken) or ``unreadable``.
    """

    path: str
    reason: str


@dataclass(frozen=True, slots=True)
class CheckpointSkipped(Event):
    """A checkpoint could not be taken (unpicklable transient state); the run
    continues uncheckpointed — never fails — and retries at the next boundary."""

    workload: str
    level: str
    reason: str


@dataclass(frozen=True, slots=True)
class WorkerCrashed(Event):
    """A supervised worker process died without delivering a result."""

    workload: str
    level: str
    attempt: int


@dataclass(frozen=True, slots=True)
class WorkerTimedOut(Event):
    """A supervised worker was killed for exceeding a deadline.

    ``reason`` is ``timeout`` (total task budget) or ``stall`` (heartbeats
    stopped); ``seconds`` is the elapsed time at the kill.
    """

    workload: str
    level: str
    attempt: int
    seconds: float
    reason: str


@dataclass(frozen=True, slots=True)
class WorkerSlow(Event):
    """A worker missed its heartbeat deadline but is still making progress.

    The stall detector distinguishes *slow but progressing* (simulated
    ``icount`` advanced within the stall window — the worker is spared and
    this event logs it, once per attempt) from *stuck* (no heartbeat and no
    progress — killed with ``WorkerTimedOut(reason="stall")``).
    """

    workload: str
    level: str
    attempt: int
    seconds: float
    icount: int


@dataclass(frozen=True, slots=True)
class TaskRetried(Event):
    """The supervisor rescheduled a failed task after backing off."""

    workload: str
    level: str
    attempt: int
    backoff: float


@dataclass(frozen=True, slots=True)
class JournalReplayed(Event):
    """``--resume`` replayed finished tasks from a write-ahead run journal.

    ``corrupt`` counts skipped unreadable/tampered lines — they degrade to
    recomputation, never to wrong results.
    """

    path: str
    replayed: int
    corrupt: int


@dataclass(frozen=True, slots=True)
class ChaosInjected(Event):
    """The deterministic chaos harness fired one planned engine-level fault."""

    fault: str
    detail: str


class EventBus:
    """Fans events out to attached sinks.

    ``enabled`` is False until the first sink attaches, so a default bus costs
    instrumented code one attribute check and nothing else.
    """

    __slots__ = ("enabled", "_sinks")

    def __init__(self) -> None:
        self._sinks: list = []
        self.enabled = False

    def attach(self, sink) -> None:
        """Attach a sink (anything with ``handle(event)``)."""
        self._sinks.append(sink)
        self.enabled = True

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every sink in attach order."""
        for sink in self._sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close sinks that hold external resources (files)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
