"""Event sinks: where emitted telemetry events go.

A sink is anything with ``handle(event)``; sinks holding external resources
also expose ``close()``.  The important one is :data:`NULL_SINK` — a shared,
always-disabled stand-in that instrumented components hold *by default*, so
the simulation's hot paths pay a single ``.enabled`` attribute check when no
telemetry has been requested.

File-backed sinks buffer lines for throughput, which would normally mean a
SIGTERM (CI timeout, scheduler preemption) truncates the event log mid-line.
Every live :class:`JsonlSink` therefore registers in a module-level weak set
that :func:`flush_all_sinks` drains; the drain is hooked into ``atexit`` and
chained onto any existing ``SIGTERM`` handler, so an interrupted run still
leaves a valid (if shorter) JSONL artifact behind.
"""

from __future__ import annotations

import atexit
import io
import json
import os
import signal
import threading
import weakref
from typing import Union

from repro.telemetry.events import Event


class NullSink:
    """Disabled bus/sink: ``enabled`` is False and every method is a no-op.

    Doubles as a bus stand-in (it has ``emit``) so components can hold one
    object either way.
    """

    enabled = False

    def handle(self, event: Event) -> None:
        """Drop the event."""

    def emit(self, event: Event) -> None:
        """Drop the event (bus-compatible spelling)."""

    def close(self) -> None:
        """Nothing to release."""


#: Shared default for every instrumented component.
NULL_SINK = NullSink()


class ListSink:
    """Collects events in memory — the test/debugging sink."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def counts(self) -> dict[str, int]:
        """Number of collected events per kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


#: Weak registry of live JsonlSinks; entries vanish with their sinks.
_LIVE_SINKS: "weakref.WeakSet[JsonlSink]" = weakref.WeakSet()
_HOOKS_LOCK = threading.Lock()
_HOOKS_INSTALLED = False


def flush_all_sinks() -> int:
    """Drain every live :class:`JsonlSink`'s buffer to disk; count drained.

    Safe to call at any time (idempotent, never raises): a sink whose file
    is already broken is skipped rather than aborting the sweep.
    """
    flushed = 0
    for sink in list(_LIVE_SINKS):
        try:
            sink.flush()
            flushed += 1
        except Exception:
            continue
    return flushed


def _sigterm_flush(signum, frame) -> None:
    flush_all_sinks()
    previous = _sigterm_flush.previous
    if callable(previous):
        previous(signum, frame)
    else:
        # Default disposition: re-deliver so the exit status still says
        # "killed by SIGTERM" instead of silently swallowing the signal.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)


_sigterm_flush.previous = None


def _install_flush_hooks() -> None:
    """Register the atexit + SIGTERM flush hooks, once per process.

    Deferred to first JsonlSink construction so merely importing telemetry
    never touches signal state; worker threads (where ``signal.signal``
    raises ValueError) just skip the signal half and keep atexit.
    """
    global _HOOKS_INSTALLED
    with _HOOKS_LOCK:
        if _HOOKS_INSTALLED:
            return
        _HOOKS_INSTALLED = True
    atexit.register(flush_all_sinks)
    try:
        previous = signal.getsignal(signal.SIGTERM)
        if previous not in (signal.SIG_IGN, _sigterm_flush):
            _sigterm_flush.previous = previous if previous is not signal.SIG_DFL else None
            signal.signal(signal.SIGTERM, _sigterm_flush)
    except ValueError:
        # Not the main thread: atexit coverage only.
        pass


class JsonlSink:
    """Streams events to a JSON-Lines file, one record per line.

    Serialized lines are buffered and written in chunks of ``flush_every`` so
    a dyn-level run with tens of thousands of prefetch events stays well under
    the <10% wall-clock budget.  Accepts a path or an open text file; paths
    are opened lazily on the first event and closed by :meth:`close`.
    """

    def __init__(self, target: Union[str, os.PathLike, io.TextIOBase], flush_every: int = 512) -> None:
        self._target = target
        self._file: io.TextIOBase | None = target if hasattr(target, "write") else None
        self._owns_file = self._file is None
        self._created = False
        self._buffer: list[str] = []
        self._flush_every = max(1, flush_every)
        self.records_written = 0
        _install_flush_hooks()
        _LIVE_SINKS.add(self)

    def handle(self, event: Event) -> None:
        self._buffer.append(json.dumps(event.to_record(), separators=(",", ":")))
        self.records_written += 1
        if len(self._buffer) >= self._flush_every:
            self._drain()

    def _drain(self) -> None:
        if not self._buffer:
            return
        if self._file is None:
            # "a" after a close so a reused sink appends rather than truncates.
            self._file = open(os.fspath(self._target), "a" if self._created else "w", encoding="utf-8")
            self._created = True
        self._file.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def flush(self) -> None:
        """Push buffered lines through to the OS (interrupt-safety hook)."""
        self._drain()
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush buffered lines and close the file (if this sink opened it).

        A path-backed sink that never saw an event still creates the (empty)
        file, so callers can promise the artifact exists after close().
        """
        self._drain()
        if self._file is None and self._owns_file and not self._created:
            open(os.fspath(self._target), "w", encoding="utf-8").close()
            self._created = True
        if self._file is None:
            return
        if self._owns_file:
            self._file.close()
            self._file = None
        else:
            self._file.flush()
