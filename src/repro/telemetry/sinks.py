"""Event sinks: where emitted telemetry events go.

A sink is anything with ``handle(event)``; sinks holding external resources
also expose ``close()``.  The important one is :data:`NULL_SINK` — a shared,
always-disabled stand-in that instrumented components hold *by default*, so
the simulation's hot paths pay a single ``.enabled`` attribute check when no
telemetry has been requested.
"""

from __future__ import annotations

import io
import json
import os
from typing import Union

from repro.telemetry.events import Event


class NullSink:
    """Disabled bus/sink: ``enabled`` is False and every method is a no-op.

    Doubles as a bus stand-in (it has ``emit``) so components can hold one
    object either way.
    """

    enabled = False

    def handle(self, event: Event) -> None:
        """Drop the event."""

    def emit(self, event: Event) -> None:
        """Drop the event (bus-compatible spelling)."""

    def close(self) -> None:
        """Nothing to release."""


#: Shared default for every instrumented component.
NULL_SINK = NullSink()


class ListSink:
    """Collects events in memory — the test/debugging sink."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def counts(self) -> dict[str, int]:
        """Number of collected events per kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


class JsonlSink:
    """Streams events to a JSON-Lines file, one record per line.

    Serialized lines are buffered and written in chunks of ``flush_every`` so
    a dyn-level run with tens of thousands of prefetch events stays well under
    the <10% wall-clock budget.  Accepts a path or an open text file; paths
    are opened lazily on the first event and closed by :meth:`close`.
    """

    def __init__(self, target: Union[str, os.PathLike, io.TextIOBase], flush_every: int = 512) -> None:
        self._target = target
        self._file: io.TextIOBase | None = target if hasattr(target, "write") else None
        self._owns_file = self._file is None
        self._created = False
        self._buffer: list[str] = []
        self._flush_every = max(1, flush_every)
        self.records_written = 0

    def handle(self, event: Event) -> None:
        self._buffer.append(json.dumps(event.to_record(), separators=(",", ":")))
        self.records_written += 1
        if len(self._buffer) >= self._flush_every:
            self._drain()

    def _drain(self) -> None:
        if not self._buffer:
            return
        if self._file is None:
            # "a" after a close so a reused sink appends rather than truncates.
            self._file = open(os.fspath(self._target), "a" if self._created else "w", encoding="utf-8")
            self._created = True
        self._file.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def close(self) -> None:
        """Flush buffered lines and close the file (if this sink opened it).

        A path-backed sink that never saw an event still creates the (empty)
        file, so callers can promise the artifact exists after close().
        """
        self._drain()
        if self._file is None and self._owns_file and not self._created:
            open(os.fspath(self._target), "w", encoding="utf-8").close()
            self._created = True
        if self._file is None:
            return
        if self._owns_file:
            self._file.close()
            self._file = None
        else:
            self._file.flush()
