"""Structured telemetry for the simulation stack (events, metrics, exporters).

Quick tour::

    from repro.telemetry import TelemetrySession
    from repro.bench.runner import run_level

    session = TelemetrySession.to_jsonl("run.jsonl")
    result = run_level("vpr", "dyn", telemetry=session)
    session.close()                       # flush the event log
    print(session.registry.snapshot())    # exact run metrics

See :mod:`repro.telemetry.events` for the event taxonomy,
:mod:`repro.telemetry.export` for the JSONL/JSON/CSV formats and
:mod:`repro.telemetry.session` for wiring details.
"""

from repro.telemetry.events import (
    EVENT_TYPES,
    AnalysisCharged,
    BurstBegin,
    BurstEnd,
    CacheFlushed,
    CacheMiss,
    DfsmBackoff,
    DfsmBuilt,
    Event,
    EventBus,
    OptimizeCycle,
    PhaseTransition,
    PrefetchEvicted,
    PrefetchIssued,
    PrefetchUsed,
    RecordSkipped,
    RunBegin,
    RunEnd,
    from_record,
)
from repro.telemetry.export import (
    load_events_jsonl,
    load_metrics_json,
    summarize,
    write_events_jsonl,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.session import TelemetryRecorder, TelemetrySession
from repro.telemetry.sinks import NULL_SINK, JsonlSink, ListSink, NullSink

__all__ = [
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "from_record",
    "RunBegin",
    "RunEnd",
    "BurstBegin",
    "BurstEnd",
    "PhaseTransition",
    "AnalysisCharged",
    "OptimizeCycle",
    "DfsmBuilt",
    "DfsmBackoff",
    "PrefetchIssued",
    "PrefetchUsed",
    "PrefetchEvicted",
    "CacheMiss",
    "CacheFlushed",
    "RecordSkipped",
    "load_events_jsonl",
    "load_metrics_json",
    "write_events_jsonl",
    "write_metrics_csv",
    "write_metrics_json",
    "summarize",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryRecorder",
    "TelemetrySession",
    "NULL_SINK",
    "NullSink",
    "JsonlSink",
    "ListSink",
]
