"""Exporters and loaders for telemetry data.

Three formats:

* **JSONL event log** — one ``Event.to_record()`` dict per line, written
  incrementally by :class:`~repro.telemetry.sinks.JsonlSink` or in one shot by
  :func:`write_events_jsonl`; :func:`load_events_jsonl` reconstructs the typed
  events, so a log round-trips exactly.
* **JSON metrics snapshot** — the dict produced by
  :meth:`~repro.telemetry.session.TelemetrySession.snapshot` (or any registry
  snapshot); :func:`load_metrics_json` is its loader.
* **CSV metrics snapshot** — the same counters/gauges flattened to
  ``metric_type,name,value,cycle`` rows for spreadsheet consumption.
* **Chrome trace-event JSON** — the span tree and event stream rendered in
  the `Trace Event Format` consumed by ``chrome://tracing`` and
  `ui.perfetto.dev <https://ui.perfetto.dev>`_; one simulated cycle maps to
  one microsecond of trace time.  :func:`write_chrome_trace` is the writer,
  :func:`load_chrome_trace`/:func:`validate_chrome_trace` the loader and
  schema check (required keys ``ph``/``ts``/``pid``/``name`` per entry,
  balanced B/E nesting per thread).

:func:`summarize` renders events + metrics as a short human-readable report.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.telemetry.events import Event, RecordSkipped, from_record

PathLike = Union[str, os.PathLike]


# ----------------------------------------------------------------- JSONL log


def write_events_jsonl(events: Iterable[Event], path: PathLike) -> int:
    """Write ``events`` to ``path`` as JSON Lines; returns the record count."""
    n = 0
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_record(), separators=(",", ":")) + "\n")
            n += 1
    return n


def load_events_jsonl(path: PathLike, strict: bool = False) -> list[Event]:
    """Load a JSONL event log back into typed event objects.

    A well-formed log round-trips exactly.  An unreadable line — broken
    JSON, a non-object, an unknown ``kind``, missing or extra fields — is
    replaced in sequence by a :class:`~repro.telemetry.events.RecordSkipped`
    event carrying the line number, the reason and a snippet of the bad
    line, so partially corrupted logs (truncated writes, editor mishaps)
    still load and the damage stays visible.  ``strict=True`` restores
    raising :class:`~repro.errors.ConfigError` on the first bad line.
    """
    events: list[Event] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ConfigError(f"expected a JSON object, got {type(record).__name__}")
                events.append(from_record(record))
            except (json.JSONDecodeError, ConfigError) as exc:
                if strict:
                    if isinstance(exc, ConfigError):
                        raise
                    raise ConfigError(f"line {line_no}: invalid JSON: {exc}") from exc
                events.append(
                    RecordSkipped(
                        cycle=0,
                        line_no=line_no,
                        reason=str(exc),
                        snippet=line[:120],
                    )
                )
    return events


# ----------------------------------------------------------- metrics exports


def write_metrics_json(snapshot: dict, path: PathLike) -> None:
    """Write a metrics snapshot dict as pretty-printed JSON."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_metrics_json(path: PathLike) -> dict:
    """Load a metrics snapshot previously written by :func:`write_metrics_json`."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_metrics_csv(snapshot: dict, path: PathLike) -> None:
    """Flatten a snapshot's counters and gauges to CSV rows.

    Histograms are emitted one row per bucket as
    ``histogram,<name>[le=<bound>],<count>,``.
    """
    with open(os.fspath(path), "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric_type", "name", "value", "cycle"])
        for name, value in snapshot.get("counters", {}).items():
            writer.writerow(["counter", name, value, ""])
        for name, gauge in snapshot.get("gauges", {}).items():
            writer.writerow(["gauge", name, gauge["value"], gauge["cycle"]])
        for name, hist in snapshot.get("histograms", {}).items():
            bounds = list(hist["bounds"]) + ["+Inf"]
            for bound, count in zip(bounds, hist["counts"]):
                writer.writerow(["histogram", f"{name}[le={bound}]", count, ""])


# --------------------------------------------------- Chrome trace-event JSON

#: Span category -> virtual thread id, so tracks group sensibly in the UI.
#: Categories sharing a tid (analysis/injection/watchdog) nest properly by
#: construction: injection spans are instantaneous inside analysis spans,
#: and reinstall spans open inside their watchdog poll.
_SPAN_TIDS = {"run": 0, "epoch": 1, "analysis": 2, "injection": 2, "watchdog": 2}
_TID_BURST = 3
_TID_INSTANT = 4
_THREAD_NAMES = {
    0: "run",
    1: "optimizer epochs",
    2: "analysis/injection/watchdog",
    3: "profiling bursts",
    4: "events",
}
#: Event kinds rendered as instants (everything else that carries payload).
_INSTANT_SKIP = {"SpanBegin", "SpanEnd", "BurstBegin", "BurstEnd"}


def chrome_trace_events(events: Sequence[Event], pid: int = 1, label: str = "") -> list[dict]:
    """Render one run's event stream as Chrome trace-event entries.

    Span events become duration (``B``/``E``) entries, burst begin/end pairs
    become duration entries on their own thread, and every other event kind
    becomes a thread-scoped instant (``i``) carrying its payload in ``args``.
    ``ts`` is the simulated cycle.  Unbalanced opens are closed at the
    largest observed timestamp so the output always nests.
    """
    entries: list[dict] = []
    for tid, thread_name in _THREAD_NAMES.items():
        entries.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": thread_name},
            }
        )
    if label:
        entries.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
    open_spans: dict[int, dict] = {}
    open_burst: Optional[dict] = None
    max_ts = 0
    body: list[dict] = []
    for event in events:
        ts = event.cycle
        max_ts = ts if ts > max_ts else max_ts
        kind = event.kind
        if kind == "SpanBegin":
            tid = _SPAN_TIDS.get(event.category, 2)
            entry = {
                "ph": "B",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "name": event.name,
                "cat": event.category,
                "args": {"span_id": event.span_id, "detail": event.detail},
            }
            body.append(entry)
            open_spans[event.span_id] = entry
        elif kind == "SpanEnd":
            begun = open_spans.pop(event.span_id, None)
            if begun is not None:
                body.append(
                    {
                        "ph": "E",
                        "ts": ts,
                        "pid": pid,
                        "tid": begun["tid"],
                        "name": begun["name"],
                        "cat": begun["cat"],
                    }
                )
        elif kind == "BurstBegin":
            entry = {
                "ph": "B",
                "ts": ts,
                "pid": pid,
                "tid": _TID_BURST,
                "name": "burst",
                "cat": "burst",
            }
            body.append(entry)
            open_burst = entry
        elif kind == "BurstEnd":
            if open_burst is not None:
                body.append(
                    {
                        "ph": "E",
                        "ts": ts,
                        "pid": pid,
                        "tid": _TID_BURST,
                        "name": "burst",
                        "cat": "burst",
                    }
                )
                open_burst = None
        else:
            args = {k: v for k, v in event.to_record().items() if k not in ("kind", "cycle")}
            body.append(
                {
                    "ph": "i",
                    "ts": ts,
                    "pid": pid,
                    "tid": _TID_INSTANT,
                    "name": kind,
                    "s": "t",
                    "args": args,
                }
            )
    if open_burst is not None:
        body.append(
            {"ph": "E", "ts": max_ts, "pid": pid, "tid": _TID_BURST, "name": "burst", "cat": "burst"}
        )
    # Close unbalanced spans innermost-first (reverse open order).
    for entry in reversed(list(open_spans.values())):
        body.append(
            {
                "ph": "E",
                "ts": max_ts,
                "pid": pid,
                "tid": entry["tid"],
                "name": entry["name"],
                "cat": entry["cat"],
            }
        )
    # Stable sort: equal-ts entries keep emission order, preserving nesting.
    body.sort(key=lambda e: e["ts"])
    return entries + body


def write_chrome_trace(
    runs: Sequence[tuple[str, Sequence[Event]]],
    path: PathLike,
    summaries: Optional[Sequence[dict]] = None,
) -> int:
    """Write one Chrome trace-event JSON document covering ``runs``.

    ``runs`` is a sequence of ``(label, events)`` pairs, one per simulated
    run; each becomes its own process (pid) in the trace so multiple
    workloads/levels land side by side on a shared timeline.  Returns the
    number of trace entries written.

    ``summaries`` (when given) is attached verbatim under the extra
    ``reproSummaries`` key — the same per-run summary documents a chunk
    directory's manifest carries, so monolithic traces and chunk
    directories are interchangeable inputs to ``repro-bench explain
    --from``.  Trace viewers and :func:`validate_chrome_trace` ignore
    unknown document keys, and the key is omitted entirely when no
    summaries are supplied, so existing outputs are byte-unchanged.
    """
    entries: list[dict] = []
    for pid, (label, events) in enumerate(runs, start=1):
        entries.extend(chrome_trace_events(events, pid=pid, label=label))
    document = {"traceEvents": entries, "displayTimeUnit": "ms"}
    if summaries is not None:
        # Canonicalize key order so a trace merged from chunks (whose
        # manifest bodies are canonical-sorted) is byte-identical to one
        # written live from the same runs.
        document["reproSummaries"] = [
            json.loads(json.dumps(doc, sort_keys=True)) for doc in summaries
        ]
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
        fh.write("\n")
    return len(entries)


def load_chrome_trace(path: PathLike) -> dict:
    """Load and validate a trace written by :func:`write_chrome_trace`."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        document = json.load(fh)
    validate_chrome_trace(document)
    return document


def validate_chrome_trace(document: object) -> None:
    """Schema-check a Chrome trace-event document; ConfigError on violation.

    Checks the JSON-object shape, a non-empty ``traceEvents`` array, the
    required keys ``ph``/``ts``/``pid``/``name`` on every entry, known phase
    codes, and balanced ``B``/``E`` nesting per ``(pid, tid)`` thread.
    """
    if not isinstance(document, dict):
        raise ConfigError(
            f"trace document must be a JSON object, got {type(document).__name__}"
        )
    entries = document.get("traceEvents")
    if not isinstance(entries, list) or not entries:
        raise ConfigError("trace document must carry a non-empty traceEvents array")
    stacks: dict[tuple, list[str]] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ConfigError(f"traceEvents[{index}] is not an object")
        for key in ("ph", "ts", "pid", "name"):
            if key not in entry:
                raise ConfigError(f"traceEvents[{index}] missing required key {key!r}")
        ph = entry["ph"]
        if ph not in ("B", "E", "i", "M", "X"):
            raise ConfigError(f"traceEvents[{index}] has unknown phase {ph!r}")
        thread = (entry["pid"], entry.get("tid", 0))
        if ph == "B":
            stacks.setdefault(thread, []).append(entry["name"])
        elif ph == "E":
            stack = stacks.get(thread)
            if not stack:
                raise ConfigError(
                    f"traceEvents[{index}]: E without matching B on thread {thread}"
                )
            opened = stack.pop()
            if opened != entry["name"]:
                raise ConfigError(
                    f"traceEvents[{index}]: E {entry['name']!r} closes B {opened!r} "
                    f"on thread {thread}"
                )
    unbalanced = {thread: stack for thread, stack in stacks.items() if stack}
    if unbalanced:
        raise ConfigError(f"unclosed B entries at end of trace: {unbalanced}")


# -------------------------------------------------------------- human report


def summarize(events: Sequence[Event] = (), metrics: dict | None = None) -> str:
    """Render a compact human-readable report of a telemetry capture."""
    lines: list[str] = []
    if events:
        counts: dict[str, int] = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        lines.append(f"events: {len(events)} total, {len(counts)} kinds")
        width = max(len(k) for k in counts)
        for kind in sorted(counts, key=lambda k: (-counts[k], k)):
            lines.append(f"  {kind.ljust(width)}  {counts[kind]}")
        transitions = [e for e in events if e.kind == "PhaseTransition"]
        if transitions:
            lines.append("phase transitions:")
            for t in transitions[:12]:
                lines.append(f"  cycle {t.cycle:>12}  {t.previous} -> {t.phase}")
            if len(transitions) > 12:
                lines.append(f"  ... {len(transitions) - 12} more")
    if metrics:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        if counters:
            lines.append("counters:")
            for name, value in counters.items():
                lines.append(f"  {name} = {value}")
        if gauges:
            lines.append("gauges:")
            for name, gauge in gauges.items():
                lines.append(f"  {name} = {gauge['value']:.4f} @ cycle {gauge['cycle']}")
        for name, hist in metrics.get("histograms", {}).items():
            count = hist["count"]
            mean = hist["total"] / count if count else 0.0
            lines.append(f"histogram {name}: n={count} mean={mean:.1f}")
    return "\n".join(lines) if lines else "(no telemetry captured)"
