"""Exporters and loaders for telemetry data.

Three formats:

* **JSONL event log** — one ``Event.to_record()`` dict per line, written
  incrementally by :class:`~repro.telemetry.sinks.JsonlSink` or in one shot by
  :func:`write_events_jsonl`; :func:`load_events_jsonl` reconstructs the typed
  events, so a log round-trips exactly.
* **JSON metrics snapshot** — the dict produced by
  :meth:`~repro.telemetry.session.TelemetrySession.snapshot` (or any registry
  snapshot); :func:`load_metrics_json` is its loader.
* **CSV metrics snapshot** — the same counters/gauges flattened to
  ``metric_type,name,value,cycle`` rows for spreadsheet consumption.

:func:`summarize` renders events + metrics as a short human-readable report.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Iterable, Sequence, Union

from repro.errors import ConfigError
from repro.telemetry.events import Event, RecordSkipped, from_record

PathLike = Union[str, os.PathLike]


# ----------------------------------------------------------------- JSONL log


def write_events_jsonl(events: Iterable[Event], path: PathLike) -> int:
    """Write ``events`` to ``path`` as JSON Lines; returns the record count."""
    n = 0
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_record(), separators=(",", ":")) + "\n")
            n += 1
    return n


def load_events_jsonl(path: PathLike, strict: bool = False) -> list[Event]:
    """Load a JSONL event log back into typed event objects.

    A well-formed log round-trips exactly.  An unreadable line — broken
    JSON, a non-object, an unknown ``kind``, missing or extra fields — is
    replaced in sequence by a :class:`~repro.telemetry.events.RecordSkipped`
    event carrying the line number, the reason and a snippet of the bad
    line, so partially corrupted logs (truncated writes, editor mishaps)
    still load and the damage stays visible.  ``strict=True`` restores
    raising :class:`~repro.errors.ConfigError` on the first bad line.
    """
    events: list[Event] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ConfigError(f"expected a JSON object, got {type(record).__name__}")
                events.append(from_record(record))
            except (json.JSONDecodeError, ConfigError) as exc:
                if strict:
                    if isinstance(exc, ConfigError):
                        raise
                    raise ConfigError(f"line {line_no}: invalid JSON: {exc}") from exc
                events.append(
                    RecordSkipped(
                        cycle=0,
                        line_no=line_no,
                        reason=str(exc),
                        snippet=line[:120],
                    )
                )
    return events


# ----------------------------------------------------------- metrics exports


def write_metrics_json(snapshot: dict, path: PathLike) -> None:
    """Write a metrics snapshot dict as pretty-printed JSON."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_metrics_json(path: PathLike) -> dict:
    """Load a metrics snapshot previously written by :func:`write_metrics_json`."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_metrics_csv(snapshot: dict, path: PathLike) -> None:
    """Flatten a snapshot's counters and gauges to CSV rows.

    Histograms are emitted one row per bucket as
    ``histogram,<name>[le=<bound>],<count>,``.
    """
    with open(os.fspath(path), "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric_type", "name", "value", "cycle"])
        for name, value in snapshot.get("counters", {}).items():
            writer.writerow(["counter", name, value, ""])
        for name, gauge in snapshot.get("gauges", {}).items():
            writer.writerow(["gauge", name, gauge["value"], gauge["cycle"]])
        for name, hist in snapshot.get("histograms", {}).items():
            bounds = list(hist["bounds"]) + ["+Inf"]
            for bound, count in zip(bounds, hist["counts"]):
                writer.writerow(["histogram", f"{name}[le={bound}]", count, ""])


# -------------------------------------------------------------- human report


def summarize(events: Sequence[Event] = (), metrics: dict | None = None) -> str:
    """Render a compact human-readable report of a telemetry capture."""
    lines: list[str] = []
    if events:
        counts: dict[str, int] = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        lines.append(f"events: {len(events)} total, {len(counts)} kinds")
        width = max(len(k) for k in counts)
        for kind in sorted(counts, key=lambda k: (-counts[k], k)):
            lines.append(f"  {kind.ljust(width)}  {counts[kind]}")
        transitions = [e for e in events if e.kind == "PhaseTransition"]
        if transitions:
            lines.append("phase transitions:")
            for t in transitions[:12]:
                lines.append(f"  cycle {t.cycle:>12}  {t.previous} -> {t.phase}")
            if len(transitions) > 12:
                lines.append(f"  ... {len(transitions) - 12} more")
    if metrics:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        if counters:
            lines.append("counters:")
            for name, value in counters.items():
                lines.append(f"  {name} = {value}")
        if gauges:
            lines.append("gauges:")
            for name, gauge in gauges.items():
                lines.append(f"  {name} = {gauge['value']:.4f} @ cycle {gauge['cycle']}")
        for name, hist in metrics.get("histograms", {}).items():
            count = hist["count"]
            mean = hist["total"] / count if count else 0.0
            lines.append(f"histogram {name}: n={count} mean={mean:.1f}")
    return "\n".join(lines) if lines else "(no telemetry captured)"
