"""Session-level wiring: one :class:`TelemetrySession` per simulated run.

The session owns the event bus and the metrics registry and knows how to
attach them to the simulation stack (interpreter + memory hierarchy; the
optimizer reads the interpreter's bus dynamically).  Three modes:

* ``TelemetrySession()`` — metrics only.  The bus stays disabled, events cost
  one attribute check, and :meth:`finalize_run` reconciles the registry from
  the authoritative simulation counters at the end.  This is what
  :func:`repro.bench.runner.run_workload` creates by default, so every
  :class:`~repro.bench.runner.RunResult` carries a filled registry for free.
* ``TelemetrySession(sinks=[...])`` — full event flow into the given sinks,
  plus a :class:`MetricsSink` feeding live, event-derived metrics
  (``events.*`` counters, the prefetch lead-time histogram).
* :meth:`TelemetrySession.recording` / :meth:`TelemetrySession.to_jsonl` —
  shorthands for the in-memory and JSONL-file variants.

:class:`TelemetryRecorder` spans *several* runs (the bench CLI's
``--telemetry/--metrics`` flags): all runs append to one shared JSONL log,
delimited by ``RunBegin``/``RunEnd`` events, and each run's snapshot lands in
one JSON document keyed ``workload/level``.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from repro.telemetry.events import Event, EventBus, RunBegin, RunEnd
from repro.telemetry.export import write_metrics_json
from repro.telemetry.metrics import (
    DFSM_SIZE_BUCKETS,
    LEAD_TIME_BUCKETS,
    STREAM_LENGTH_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.sinks import JsonlSink, ListSink
from repro.tracing.ledger import PrefetchLedger
from repro.tracing.spans import NULL_TRACER, SpanCollector, SpanTracer

#: Default sampling period for CacheMiss events (1 = every miss).
DEFAULT_MISS_SAMPLE_EVERY = 64
#: Default sampling period for PrefetchIssued/Used/Evicted events.
DEFAULT_PREFETCH_SAMPLE_EVERY = 32


class MetricsSink:
    """Derives live metrics from the event stream.

    Keeps an ``events.<Kind>`` counter per event kind (the agreement tests
    compare these against the legacy simulation counters) and feeds the
    prefetch lead-time histogram, which only exists as per-use data at event
    time.  Exact run totals still come from :meth:`TelemetrySession.finalize_run`.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._lead_time = registry.histogram("prefetch.lead_time", LEAD_TIME_BUCKETS)

    def handle(self, event: Event) -> None:
        self.registry.inc("events." + event.kind)
        if event.kind == "PrefetchUsed":
            self._lead_time.observe(event.lead)


class TelemetrySession:
    """Event bus + metrics registry for one (workload, level) execution."""

    def __init__(
        self,
        sinks: Sequence = (),
        miss_sample_every: int = DEFAULT_MISS_SAMPLE_EVERY,
        prefetch_sample_every: int = DEFAULT_PREFETCH_SAMPLE_EVERY,
        tracing: bool = False,
        track_prefetches: bool = False,
        proc_attribution: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.bus = EventBus()
        self.miss_sample_every = max(1, miss_sample_every)
        self.prefetch_sample_every = max(1, prefetch_sample_every)
        self.context: dict[str, str] = {}
        self._optimizer: Optional[dict] = None
        #: causal span tracing (repro.tracing): ``tracing=True`` routes span
        #: events through the bus and keeps a reconstructed tree in ``spans``
        self.tracer = SpanTracer(self.bus) if tracing else NULL_TRACER
        self.spans: Optional[SpanCollector] = SpanCollector() if tracing else None
        #: per-prefetch lifecycle ledger; ``track_prefetches=True`` attaches
        #: it to the hierarchy at :meth:`wire`
        self.ledger: Optional[PrefetchLedger] = (
            PrefetchLedger() if track_prefetches else None
        )
        #: per-procedure cycle attribution; ``proc_attribution=True`` installs
        #: a :class:`~repro.tracing.attribution.ProcAttrRecorder` at
        #: :meth:`wire` (descriptive counters only — never charges cycles)
        self.proc_attribution = proc_attribution
        self.proc_attr = None
        self._run_span = 0
        for sink in sinks:
            self.bus.attach(sink)
        if self.spans is not None:
            self.bus.attach(self.spans)
        if self.bus.enabled:
            self.bus.attach(MetricsSink(self.registry))

    # ----------------------------------------------------------- constructors

    @classmethod
    def recording(
        cls,
        miss_sample_every: int = DEFAULT_MISS_SAMPLE_EVERY,
        prefetch_sample_every: int = DEFAULT_PREFETCH_SAMPLE_EVERY,
        tracing: bool = False,
        track_prefetches: bool = False,
        proc_attribution: bool = False,
    ) -> "TelemetrySession":
        """Session collecting events in memory (``session.events``)."""
        return cls(
            sinks=[ListSink()],
            miss_sample_every=miss_sample_every,
            prefetch_sample_every=prefetch_sample_every,
            tracing=tracing,
            track_prefetches=track_prefetches,
            proc_attribution=proc_attribution,
        )

    @classmethod
    def to_jsonl(
        cls,
        path: Union[str, os.PathLike],
        miss_sample_every: int = DEFAULT_MISS_SAMPLE_EVERY,
        prefetch_sample_every: int = DEFAULT_PREFETCH_SAMPLE_EVERY,
        flush_every: int = 512,
    ) -> "TelemetrySession":
        """Session streaming events to a JSONL file (close() flushes it)."""
        return cls(
            sinks=[JsonlSink(path, flush_every=flush_every)],
            miss_sample_every=miss_sample_every,
            prefetch_sample_every=prefetch_sample_every,
        )

    @property
    def events(self) -> list[Event]:
        """Events captured by the first ListSink, if any."""
        for sink in self.bus._sinks:
            if isinstance(sink, ListSink):
                return sink.events
        return []

    # ----------------------------------------------------------------- wiring

    def wire(self, interp) -> None:
        """Attach this session to an interpreter and its memory hierarchy."""
        interp.telemetry = self.bus
        interp.tracer = self.tracer
        if self.proc_attribution:
            # A checkpointed interpreter restores with its recorder attached;
            # replacing it would drop every pre-checkpoint charge, so only a
            # bare interpreter gets a fresh one.
            if interp.proc_attr is None:
                from repro.tracing.attribution import ProcAttrRecorder

                interp.proc_attr = ProcAttrRecorder()
            self.proc_attr = interp.proc_attr
        hierarchy = interp.hierarchy
        hierarchy.telemetry = self.bus
        hierarchy.ledger = self.ledger
        hierarchy.miss_sample_every = self.miss_sample_every
        hierarchy.prefetch_sample_every = self.prefetch_sample_every

    def begin_run(self, workload: str, level: str) -> None:
        """Record run identity and emit the ``RunBegin`` delimiter."""
        self.context = {"workload": workload, "level": level}
        if self.bus.enabled:
            self.bus.emit(RunBegin(0, workload, level))
        if self.tracer.enabled:
            self._run_span = self.tracer.begin(0, f"{workload}/{level}", "run")

    # ------------------------------------------------------------- finalizing

    def finalize_run(self, stats, hierarchy, summary=None) -> None:
        """Reconcile the registry from the authoritative run counters.

        ``stats`` is an :class:`~repro.interp.interpreter.ExecStats`,
        ``hierarchy`` a :class:`~repro.machine.hierarchy.MemoryHierarchy` and
        ``summary`` an optional :class:`~repro.core.stats.OptimizerSummary`
        (duck-typed to keep this package import-free of the simulation).
        """
        # Wind down the span stack (epochs, the run span) before the RunEnd
        # delimiter so collectors see a fully closed tree.
        self.tracer.close_all(stats.cycles)
        if self.bus.enabled:
            self.bus.emit(RunEnd(stats.cycles, stats.instructions, stats.bursts))
        reg = self.registry
        now = stats.cycles
        for name, value in (
            ("exec.cycles", stats.cycles),
            ("exec.instructions", stats.instructions),
            ("exec.memory_refs", stats.memory_refs),
            ("exec.mem_stall_cycles", stats.mem_stall_cycles),
            ("exec.checks_executed", stats.checks_executed),
            ("exec.bursts", stats.bursts),
            ("exec.traced_refs", stats.traced_refs),
            ("exec.trace_charges", stats.trace_charges),
            ("exec.detects_executed", stats.detects_executed),
            ("exec.detect_cycles", stats.detect_cycles),
            ("exec.prefetches_issued", stats.prefetches_issued),
            ("exec.charged_cycles", stats.charged_cycles),
            ("cache.demand_accesses", hierarchy.demand_accesses),
            ("cache.l1.hits", hierarchy.l1.hits),
            ("cache.l1.misses", hierarchy.l1.misses),
            ("cache.l1.evictions", hierarchy.l1.evictions),
            ("cache.l2.hits", hierarchy.l2.hits),
            ("cache.l2.misses", hierarchy.l2.misses),
            ("cache.l2.evictions", hierarchy.l2.evictions),
            ("prefetch.issued", hierarchy.prefetch.issued),
            ("prefetch.redundant", hierarchy.prefetch.redundant),
            ("prefetch.useful", hierarchy.prefetch.useful),
            ("prefetch.late", hierarchy.prefetch.late),
            ("prefetch.wasted", hierarchy.prefetch.wasted),
        ):
            reg.set_counter(name, value)
        for source in sorted(hierarchy.prefetch.by_source):
            reg.set_counter(
                f"prefetch.issued.{source}", hierarchy.prefetch.by_source[source]
            )
        prefetch = hierarchy.prefetch
        reg.set_gauge("exec.cpi", stats.cpi, now)
        reg.set_gauge("cache.l1.miss_rate", hierarchy.l1_miss_rate, now)
        l2 = hierarchy.l2
        reg.set_gauge("cache.l2.miss_rate", l2.misses / l2.accesses if l2.accesses else 0.0, now)
        reg.set_gauge("prefetch.accuracy", prefetch.accuracy, now)
        reg.set_gauge("prefetch.timeliness", prefetch.timeliness, now)
        reg.set_gauge("prefetch.pollution", prefetch.pollution, now)
        if summary is not None:
            self._optimizer = summary.to_dict()
            reg.set_counter("optimizer.opt_cycles", summary.num_cycles)
            reg.set_gauge("optimizer.mean_traced_refs", summary.mean_traced_refs, now)
            reg.set_gauge("optimizer.mean_streams", summary.mean_streams, now)
            reg.set_gauge("optimizer.mean_dfsm_states", summary.mean_dfsm_states, now)
            reg.set_gauge("optimizer.mean_dfsm_transitions", summary.mean_dfsm_transitions, now)
            reg.set_gauge("optimizer.mean_injected_checks", summary.mean_injected_checks, now)
            reg.set_gauge("optimizer.mean_procs_modified", summary.mean_procs_modified, now)
            lengths = reg.histogram("optimizer.stream_length", STREAM_LENGTH_BUCKETS)
            states = reg.histogram("optimizer.dfsm_states", DFSM_SIZE_BUCKETS)
            for cycle_stats in summary.cycles:
                states.observe(cycle_stats.dfsm_states)
                for length in cycle_stats.stream_lengths:
                    lengths.observe(length)

    def snapshot(self) -> dict[str, object]:
        """Full JSON-serializable view: context + metrics + optimizer dict."""
        snap = self.registry.snapshot()
        snap["context"] = dict(self.context)
        snap["optimizer"] = self._optimizer
        return snap

    def close(self) -> None:
        """Close sinks owned by this session (flushes JSONL files)."""
        self.bus.close()


class TelemetryRecorder:
    """Telemetry spanning a whole bench session (many workload × level runs).

    All runs share one JSONL sink; per-run metrics snapshots accumulate and
    are written as a single JSON document on :meth:`close`.
    """

    def __init__(
        self,
        events_path: Optional[Union[str, os.PathLike]] = None,
        metrics_path: Optional[Union[str, os.PathLike]] = None,
        miss_sample_every: int = DEFAULT_MISS_SAMPLE_EVERY,
        prefetch_sample_every: int = DEFAULT_PREFETCH_SAMPLE_EVERY,
        flush_every: int = 512,
        stream_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.events_path = events_path
        self.metrics_path = metrics_path
        self.miss_sample_every = miss_sample_every
        self.prefetch_sample_every = prefetch_sample_every
        self.snapshots: dict[str, object] = {}
        self._jsonl = JsonlSink(events_path, flush_every=flush_every) if events_path else None
        #: bounded-memory chunked export (``--stream DIR``), shared by every
        #: run of the session exactly like the JSONL sink
        self.stream_dir = stream_dir
        if stream_dir is not None:
            from repro.obs.stream import StreamingTraceSink

            self._stream = StreamingTraceSink(stream_dir)
        else:
            self._stream = None

    @property
    def enabled(self) -> bool:
        return (
            self.events_path is not None
            or self.metrics_path is not None
            or self.stream_dir is not None
        )

    def session_for(self, workload: str, level: str) -> Optional[TelemetrySession]:
        """A fresh session for one run, sharing the recorder's JSONL sink."""
        if not self.enabled:
            return None
        sinks = [s for s in (self._jsonl, self._stream) if s is not None]
        session = TelemetrySession(
            sinks=sinks,
            miss_sample_every=self.miss_sample_every,
            prefetch_sample_every=self.prefetch_sample_every,
            # Streamed runs record per-procedure attribution so chunk
            # summaries and Perfetto proc tracks carry the by-proc split.
            proc_attribution=self._stream is not None,
        )
        session.begin_run(workload, level)
        return session

    def record(self, workload: str, level: str, session: TelemetrySession) -> None:
        """Stash the finished run's snapshot under ``workload/level``."""
        self.snapshots[f"{workload}/{level}"] = session.snapshot()

    def close(self) -> None:
        """Flush the shared JSONL log and write the metrics JSON document."""
        if self._jsonl is not None:
            self._jsonl.close()
        if self._stream is not None:
            self._stream.close()
        if self.metrics_path is not None:
            write_metrics_json(self.snapshots, self.metrics_path)
