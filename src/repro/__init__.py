"""Dynamic hot data stream prefetching for general-purpose programs.

A full-system reproduction of Chilimbi & Hirzel (PLDI 2002) on a simulated
machine substrate.  The top-level names cover the common workflow:

>>> from repro import (OptimizerConfig, run_level)
>>> baseline = run_level("mcf", "orig", passes=4)
>>> optimized = run_level("mcf", "dyn", passes=4)
>>> optimized.overhead_vs(baseline) < 0   # dynamic prefetching wins
True

Sub-packages:

- :mod:`repro.machine`   — caches, memory, timing model
- :mod:`repro.ir`        — the mini-ISA and builder DSL
- :mod:`repro.interp`    — the simulated machine
- :mod:`repro.vulcan`    — static/dynamic binary editing
- :mod:`repro.profiling` — bursty tracing and symbol interning
- :mod:`repro.sequitur`  — online grammar inference
- :mod:`repro.analysis`  — hot-data-stream detection (Figure 5)
- :mod:`repro.dfsm`      — prefix-match DFSM construction and codegen
- :mod:`repro.core`      — the dynamic prefetching optimizer (Figure 1)
- :mod:`repro.workloads` — the six benchmark analogues
- :mod:`repro.bench`     — experiment runner and figure/table regeneration
- :mod:`repro.telemetry` — structured events, metrics and exporters
"""

from repro.analysis import AnalysisConfig, HotDataStream, analyze_grammar, find_hot_streams
from repro.bench.runner import LEVELS, RunResult, run_level, run_workload
from repro.core import DynamicPrefetcher, OptimizerConfig, paper_scale
from repro.dfsm import build_dfsm, generate_handlers
from repro.interp import ExecStats, Interpreter
from repro.ir import ProcedureBuilder, Program, build_program
from repro.machine import MachineConfig, Memory, MemoryHierarchy, PAPER_MACHINE
from repro.profiling import BurstyCounters, TemporalProfiler, overall_sampling_rate
from repro.sequitur import Sequitur
from repro.telemetry import MetricsRegistry, TelemetryRecorder, TelemetrySession
from repro.vulcan import deoptimize, inject_detection, instrument_program
from repro.workloads import ChainMixParams, build_chainmix

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "HotDataStream",
    "analyze_grammar",
    "find_hot_streams",
    "LEVELS",
    "RunResult",
    "run_level",
    "run_workload",
    "DynamicPrefetcher",
    "OptimizerConfig",
    "paper_scale",
    "build_dfsm",
    "generate_handlers",
    "ExecStats",
    "Interpreter",
    "ProcedureBuilder",
    "Program",
    "build_program",
    "MachineConfig",
    "Memory",
    "MemoryHierarchy",
    "PAPER_MACHINE",
    "BurstyCounters",
    "TemporalProfiler",
    "overall_sampling_rate",
    "Sequitur",
    "MetricsRegistry",
    "TelemetryRecorder",
    "TelemetrySession",
    "deoptimize",
    "inject_detection",
    "instrument_program",
    "ChainMixParams",
    "build_chainmix",
    "__version__",
]
